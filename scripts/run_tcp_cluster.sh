#!/usr/bin/env bash
# Launches an n-replica consensus cluster as real OS processes on
# 127.0.0.1 and asserts cluster-wide agreement.
#
#   usage: scripts/run_tcp_cluster.sh [BUILD_DIR] [PROTOCOL] [N] [--shards S]
#
#   BUILD_DIR  directory containing examples/probft_node (default: build)
#   PROTOCOL   probft | pbft | hotstuff | client | restart | shard | reads
#              (default: probft)
#   N          cluster size                                (default: 4)
#   --shards S consensus groups per node; anywhere on the command line.
#              S > 1 selects the shard smoke (PROTOCOL=shard defaults S=4).
#
# The consensus protocols run the single-shot smoke: exits 0 iff all N
# processes printed a DECIDED line with one common value within the
# timeout.
#
# PROTOCOL=client runs the SMR client-path smoke instead: every node runs
# the pipelined replicated log (--smr) with a client port, a real
# probft_client submits $REQUESTS requests (with a forced retry of the
# first one), and the script asserts that the client got a reply for every
# request, that every replica executed exactly $REQUESTS commands (the
# retry must not double-execute), and that all replicas ended with
# identical log digests.
#
# PROTOCOL=restart runs the crash-restart durability smoke: an SMR
# cluster with per-node write-ahead logs (--wal-dir, checkpoint interval
# 2) and f=1 / l=1.5 (so 3 of 4 replicas keep committing and can form
# 2f+1 checkpoint certificates with one replica down). Mid-load, replica
# 2 is killed with SIGKILL — the one place this script uses an uncatchable
# signal, because the point is surviving a crash with no shutdown path —
# then restarted against the same WAL. The script asserts the restarted
# process printed RECOVERED with a nonzero checkpoint base (it resumed
# from its last stable checkpoint, not genesis) and that all four
# replicas, the reborn one included, finish with identical chained log
# digests. All intentional stops elsewhere use SIGTERM: probft_node
# flushes its WAL and prints its final SMRLOG/STATS lines on the way out.
#
# PROTOCOL=shard runs the sharded-SMR smoke: every node serves S
# consensus groups (--shards S), a sharded client routes $SHARD_REQUESTS
# requests by placement hash, a second client submits cross-shard
# transactions while replica 2 is SIGKILLed mid-load and restarted
# against its per-shard WALs. The script asserts (a) every client
# request and every dtx got its reply, with every dtx committed, (b)
# the restarted victim printed per-shard RECOVERED lines, (c) all N
# replicas agree per shard: for each s, the N "SMRLOG ... shard=s"
# digests are identical, and (d) every replica's dtx tracker converged
# to the same committed/aborted counts with nothing in flight.
#
# PROTOCOL=reads runs the linearizable-read smoke: an SMR cluster with
# the read fast path on (--reads 1, f=1 / l=1.5 so the leader needs real
# lease grants from 2f other replicas), and the client interleaves reads
# at READ_RATIO (default 0.9) under READ_CONSISTENCY (default
# linearizable). The script asserts every write AND every read completed
# (READS ok — a read only counts as executed when a replica answered it
# with a non-rejected reply), that read values were never stale (the
# client keys each read by its own completed write, so probft_client
# exits nonzero on a mismatch), and that all replicas ended with
# identical log digests.
#
# NODE_EXTRA_FLAGS appends extra probft_node flags to every node in any
# mode — e.g. NODE_EXTRA_FLAGS="--verify-threads 2 --exec-offload 1" runs
# the cluster multi-core (the TSan CI job does exactly that).
#
# This is the CI smoke test for the TCP backend (.github/workflows/ci.yml
# job `tcp-smoke`, nightly `smr-smoke` and `restart-smoke`; job
# `shard-smoke` runs the shard mode).
set -u

# --shards S may appear anywhere; the remaining args stay positional.
SHARDS=0
positional=()
while (( $# )); do
  if [[ "$1" == "--shards" && $# -ge 2 ]]; then
    SHARDS=$2
    shift 2
  else
    positional+=("$1")
    shift
  fi
done
BUILD_DIR=${positional[0]:-build}
PROTOCOL=${positional[1]:-probft}
N=${positional[2]:-4}
if [[ "$PROTOCOL" == shard ]]; then
  (( SHARDS > 1 )) || SHARDS=4
elif (( SHARDS > 1 )); then
  PROTOCOL=shard
fi
NODE_BIN="$BUILD_DIR/examples/probft_node"
CLIENT_BIN="$BUILD_DIR/examples/probft_client"
DEADLINE_MS=${DEADLINE_MS:-30000}
LINGER_MS=${LINGER_MS:-2000}
REQUESTS=${REQUESTS:-16}
NODE_EXTRA_FLAGS=${NODE_EXTRA_FLAGS:-}

if [[ ! -x "$NODE_BIN" ]]; then
  echo "error: $NODE_BIN not found (build the examples first)" >&2
  exit 2
fi
if [[ ( "$PROTOCOL" == client || "$PROTOCOL" == restart \
        || "$PROTOCOL" == shard || "$PROTOCOL" == reads ) \
      && ! -x "$CLIENT_BIN" ]]; then
  echo "error: $CLIENT_BIN not found (build the examples first)" >&2
  exit 2
fi

# Derive a port range from the PID so concurrent CI jobs don't collide;
# retry the whole cluster on a fresh range if a port was taken.
workdir=$(mktemp -d)
pids=()
cleanup() {
  # Clean stops are SIGTERM: probft_node traps it, flushes its WAL and
  # prints final SMRLOG/STATS lines. SIGKILL is reserved for the
  # crash-restart smoke, where an uncatchable death is the test.
  (( ${#pids[@]} )) && kill -TERM "${pids[@]}" 2>/dev/null
  rm -rf "$workdir"
}
trap cleanup EXIT

run_client_mode() {
  local base_port=$1
  local peers=$2
  local client_servers=""
  for (( i = 0; i < N; i++ )); do
    client_servers+="${client_servers:+,}127.0.0.1:$(( base_port + 100 + i ))"
  done

  pids=()
  for (( id = 1; id <= N; id++ )); do
    timeout $(( DEADLINE_MS / 1000 + LINGER_MS / 1000 + 15 )) \
      "$NODE_BIN" --id "$id" --peers "$peers" --smr 1 \
        --client-port $(( base_port + 100 + id - 1 )) \
        --expect-cmds "$REQUESTS" --run-ms "$DEADLINE_MS" \
        --linger-ms "$LINGER_MS" --stats 1 $NODE_EXTRA_FLAGS \
        > "$workdir/node-$id.out" 2> "$workdir/node-$id.err" &
    pids+=($!)
  done

  sleep 1
  if ! timeout $(( DEADLINE_MS / 1000 + 10 )) \
      "$CLIENT_BIN" --servers "$client_servers" --requests "$REQUESTS" \
        --mode closed --force-retry 1 --retry-ms 3000 \
        --timeout-ms "$DEADLINE_MS" > "$workdir/client.out" 2>&1; then
    echo "FAIL: client did not complete" >&2
    cat "$workdir/client.out" >&2
    return 1
  fi

  local failures=0
  for (( id = 1; id <= N; id++ )); do
    wait "${pids[$((id - 1))]}" || failures=$((failures + 1))
  done
  pids=()
  if (( failures > 0 )); then
    if grep -lq "cannot start transport" "$workdir"/node-*.err 2>/dev/null; then
      return 2  # retryable port clash
    fi
    echo "FAIL: $failures/$N SMR nodes did not reach $REQUESTS commands" >&2
    cat "$workdir"/node-*.err >&2
    return 1
  fi

  cat "$workdir/client.out"
  grep -h "^SMRLOG" "$workdir"/node-*.out
  local digests cmds
  digests=$(grep -h "^SMRLOG" "$workdir"/node-*.out \
              | sed 's/.*digest=//' | sort -u | wc -l)
  cmds=$(grep -h "^SMRLOG" "$workdir"/node-*.out \
           | grep -c "cmds=$REQUESTS ")
  if [[ "$digests" -ne 1 || "$cmds" -ne "$N" ]]; then
    echo "FAIL: logs diverged or a retry double-executed" >&2
    return 1
  fi
  if ! grep -q "^CLIENT ok requests=$REQUESTS replies=$REQUESTS" \
      "$workdir/client.out"; then
    echo "FAIL: client reply accounting is off" >&2
    return 1
  fi
  echo "OK: $N/$N replicas executed $REQUESTS client commands with identical logs"
  return 0
}

run_reads_mode() {
  local base_port=$1
  local peers=$2
  local ratio=${READ_RATIO:-0.9}
  local consistency=${READ_CONSISTENCY:-linearizable}
  local client_servers=""
  for (( i = 0; i < N; i++ )); do
    client_servers+="${client_servers:+,}127.0.0.1:$(( base_port + 100 + i ))"
  done
  rm -rf "$workdir"/node-*.out "$workdir"/node-*.err

  pids=()
  for (( id = 1; id <= N; id++ )); do
    timeout $(( DEADLINE_MS / 1000 + LINGER_MS / 1000 + 15 )) \
      "$NODE_BIN" --id "$id" --peers "$peers" --smr 1 --f 1 --l 1.5 \
        --reads 1 \
        --client-port $(( base_port + 100 + id - 1 )) \
        --expect-cmds "$REQUESTS" --run-ms "$DEADLINE_MS" \
        --linger-ms "$LINGER_MS" --stats 1 $NODE_EXTRA_FLAGS \
        > "$workdir/node-$id.out" 2> "$workdir/node-$id.err" &
    pids+=($!)
  done

  sleep 1
  if ! timeout $(( DEADLINE_MS / 1000 + 10 )) \
      "$CLIENT_BIN" --servers "$client_servers" --requests "$REQUESTS" \
        --mode closed --read-ratio "$ratio" --consistency "$consistency" \
        --retry-ms 3000 --timeout-ms "$DEADLINE_MS" \
        > "$workdir/client.out" 2>&1; then
    echo "FAIL: client did not complete its writes and reads" >&2
    cat "$workdir/client.out" >&2
    return 1
  fi

  local failures=0
  for (( id = 1; id <= N; id++ )); do
    wait "${pids[$((id - 1))]}" || failures=$((failures + 1))
  done
  pids=()
  if (( failures > 0 )); then
    if grep -lq "cannot start transport" "$workdir"/node-*.err 2>/dev/null; then
      return 2  # retryable port clash
    fi
    echo "FAIL: $failures/$N SMR nodes did not reach $REQUESTS commands" >&2
    cat "$workdir"/node-*.err >&2
    return 1
  fi

  cat "$workdir/client.out"
  grep -h "^SMRLOG" "$workdir"/node-*.out
  local digests cmds
  digests=$(grep -h "^SMRLOG" "$workdir"/node-*.out \
              | sed 's/.*digest=//' | sort -u | wc -l)
  cmds=$(grep -h "^SMRLOG" "$workdir"/node-*.out \
           | grep -c "cmds=$REQUESTS ")
  if [[ "$digests" -ne 1 || "$cmds" -ne "$N" ]]; then
    echo "FAIL: logs diverged under the read workload" >&2
    return 1
  fi
  if ! grep -q "^CLIENT ok requests=$REQUESTS replies=$REQUESTS" \
      "$workdir/client.out"; then
    echo "FAIL: client reply accounting is off" >&2
    return 1
  fi
  if ! grep -q "^READS ok consistency=$consistency .*stale=0 " \
      "$workdir/client.out"; then
    echo "FAIL: reads incomplete or stale" >&2
    return 1
  fi
  echo "OK: $N/$N replicas executed $REQUESTS writes with identical logs;" \
       "$consistency reads at ratio $ratio all answered, none stale"
  return 0
}

run_restart_mode() {
  local base_port=$1
  local peers=$2
  local victim=2
  # Enough closed-loop requests that the SIGKILL at ~t+5s lands mid-load:
  # the victim must then catch up (state transfer + per-slot proofs) after
  # recovery, not merely replay a finished log. (REQUESTS has a global
  # client-mode default of 16, hence the separate override knob.)
  local reqs=${RESTART_REQUESTS:-192}
  local linger=8000  # survivors must outlive the victim's catch-up
  local client_servers=""
  for (( i = 0; i < N; i++ )); do
    client_servers+="${client_servers:+,}127.0.0.1:$(( base_port + 100 + i ))"
  done
  # A port-clash retry must not inherit the previous attempt's WALs or
  # stale stderr (the retryable-failure grep reads node-*.err).
  rm -rf "$workdir"/wal-* "$workdir"/node-*.out "$workdir"/node-*.err

  start_node() {  # id, outfile
    local id=$1 out=$2
    timeout $(( DEADLINE_MS / 1000 + linger / 1000 + 20 )) \
      "$NODE_BIN" --id "$id" --peers "$peers" --smr 1 --f 1 --l 1.5 \
        --client-port $(( base_port + 100 + id - 1 )) \
        --wal-dir "$workdir/wal-$id" --checkpoint-interval 2 \
        --expect-cmds "$reqs" --run-ms "$DEADLINE_MS" \
        --linger-ms "$linger" --stats 1 $NODE_EXTRA_FLAGS \
        > "$workdir/$out" 2>> "$workdir/node-$id.err" &
    pids+=($!)
  }

  pids=()
  for (( id = 1; id <= N; id++ )); do
    start_node "$id" "node-$id.out"
  done

  sleep 1
  timeout $(( DEADLINE_MS / 1000 + 10 )) \
    "$CLIENT_BIN" --servers "$client_servers" --requests "$reqs" \
      --mode closed --retry-ms 2000 \
      --timeout-ms "$DEADLINE_MS" > "$workdir/client.out" 2>&1 &
  local client_pid=$!
  pids+=("$client_pid")

  # Crash the victim mid-load with an uncatchable SIGKILL: no WAL flush,
  # no goodbye — recovery must work from whatever fsync'd state is on
  # disk. Then restart it against the same WAL directory. The pause
  # first lets several checkpoint intervals stabilize, so the recovery
  # base must be past genesis.
  sleep 4
  # The tracked pid is the timeout(1) wrapper; SIGKILL is not forwarded
  # to children, so kill the probft_node child first or it would survive
  # as an orphan still holding the victim's ports.
  local victim_pid=${pids[$((victim - 1))]}
  pkill -KILL -P "$victim_pid" 2>/dev/null
  kill -KILL "$victim_pid" 2>/dev/null
  wait "$victim_pid" 2>/dev/null
  sleep 1
  start_node "$victim" "node-$victim-restart.out"

  local failures=0
  for (( id = 1; id <= N; id++ )); do
    if (( id == victim )); then continue; fi
    wait "${pids[$((id - 1))]}" || failures=$((failures + 1))
  done
  wait "${pids[-1]}" || failures=$((failures + 1))  # restarted victim
  if ! wait "$client_pid"; then
    echo "FAIL: client did not complete" >&2
    cat "$workdir/client.out" >&2
    pids=()
    return 1
  fi
  pids=()
  if (( failures > 0 )); then
    if grep -lq "cannot start transport" "$workdir"/node-*.err 2>/dev/null; then
      return 2  # retryable port clash
    fi
    echo "FAIL: $failures nodes did not reach $reqs commands" >&2
    cat "$workdir"/node-*.err >&2
    return 1
  fi

  grep -h "^RECOVERED\|^SMRLOG" "$workdir/node-$victim-restart.out"
  if ! grep -q "^RECOVERED id=$victim base=[1-9]" \
      "$workdir/node-$victim-restart.out"; then
    echo "FAIL: victim did not recover from a stable checkpoint" >&2
    cat "$workdir/node-$victim-restart.out" >&2
    return 1
  fi

  # Final-state files: the three survivors plus the victim's second life.
  # (The victim's first life was SIGKILLed and printed nothing.)
  local finals=()
  for (( id = 1; id <= N; id++ )); do
    if (( id == victim )); then continue; fi
    finals+=("$workdir/node-$id.out")
  done
  finals+=("$workdir/node-$victim-restart.out")
  grep -h "^SMRLOG" "${finals[@]}"
  local digests cmds
  digests=$(grep -h "^SMRLOG" "${finals[@]}" \
              | sed 's/.*digest=//' | sort -u | wc -l)
  cmds=$(grep -h "^SMRLOG" "${finals[@]}" | grep -c "cmds=$reqs ")
  if [[ "$digests" -ne 1 || "$cmds" -ne "$N" ]]; then
    echo "FAIL: logs diverged after crash-restart" >&2
    return 1
  fi
  echo "OK: replica $victim died (SIGKILL), recovered from its WAL and" \
       "rejoined; $N/$N replicas ended with identical log digests"
  return 0
}

run_shard_mode() {
  local base_port=$1
  local peers=$2
  local victim=2
  local reqs=${SHARD_REQUESTS:-96}
  local dtx=${SHARD_DTX:-2}
  # Every entry count is deterministic: the client mines one key per
  # shard into each tx, so each tx commits exactly 2 + 2*SHARDS entries
  # (BEGIN + DECIDE + per-participant PREPARE/APPLY) on top of the
  # ordinary requests. --expect-cmds counts total executed entries.
  local expect=$(( reqs + dtx * (2 + 2 * SHARDS) ))
  local linger=8000
  local client_servers=""
  for (( i = 0; i < N; i++ )); do
    client_servers+="${client_servers:+,}127.0.0.1:$(( base_port + 100 + i ))"
  done
  rm -rf "$workdir"/wal-* "$workdir"/node-*.out "$workdir"/node-*.err

  start_node() {  # id, outfile
    local id=$1 out=$2
    timeout $(( DEADLINE_MS / 1000 + linger / 1000 + 20 )) \
      "$NODE_BIN" --id "$id" --peers "$peers" --smr 1 --shards "$SHARDS" \
        --f 1 --l 1.5 \
        --client-port $(( base_port + 100 + id - 1 )) \
        --wal-dir "$workdir/wal-$id" --checkpoint-interval 2 \
        --expect-cmds "$expect" --run-ms "$DEADLINE_MS" \
        --linger-ms "$linger" --stats 1 $NODE_EXTRA_FLAGS \
        > "$workdir/$out" 2>> "$workdir/node-$id.err" &
    pids+=($!)
  }

  pids=()
  for (( id = 1; id <= N; id++ )); do
    start_node "$id" "node-$id.out"
  done

  sleep 1
  # Load client: closed-loop sharded requests, routed by placement hash.
  timeout $(( DEADLINE_MS / 1000 + 10 )) \
    "$CLIENT_BIN" --servers "$client_servers" --shards "$SHARDS" \
      --requests "$reqs" --mode closed --retry-ms 2000 \
      --timeout-ms "$DEADLINE_MS" > "$workdir/client.out" 2>&1 &
  local client_pid=$!
  pids+=("$client_pid")

  # Dtx client: cross-shard transactions in flight around the SIGKILL
  # below, so atomicity is exercised against a crashing replica.
  sleep 2
  timeout $(( DEADLINE_MS / 1000 + 10 )) \
    "$CLIENT_BIN" --servers "$client_servers" --shards "$SHARDS" \
      --requests 0 --dtx "$dtx" --client-id 88001 --mode open \
      --retry-ms 1000 --timeout-ms "$DEADLINE_MS" \
      > "$workdir/dtx.out" 2>&1 &
  local dtx_pid=$!
  pids+=("$dtx_pid")

  # Crash the victim mid-load (uncatchable SIGKILL — no WAL flush), then
  # restart it against the same per-shard WAL directories.
  sleep 1
  local victim_pid=${pids[$((victim - 1))]}
  pkill -KILL -P "$victim_pid" 2>/dev/null
  kill -KILL "$victim_pid" 2>/dev/null
  wait "$victim_pid" 2>/dev/null
  sleep 1
  start_node "$victim" "node-$victim-restart.out"

  local failures=0
  for (( id = 1; id <= N; id++ )); do
    if (( id == victim )); then continue; fi
    wait "${pids[$((id - 1))]}" || failures=$((failures + 1))
  done
  wait "${pids[-1]}" || failures=$((failures + 1))  # restarted victim
  local client_ok=0
  wait "$client_pid" || client_ok=1
  wait "$dtx_pid" || client_ok=1
  pids=()
  if (( client_ok != 0 )); then
    echo "FAIL: a client did not complete" >&2
    cat "$workdir/client.out" "$workdir/dtx.out" >&2
    return 1
  fi
  if (( failures > 0 )); then
    if grep -lq "cannot start transport" "$workdir"/node-*.err 2>/dev/null; then
      return 2  # retryable port clash
    fi
    echo "FAIL: $failures nodes did not reach $expect executed entries" >&2
    cat "$workdir"/node-*.err >&2
    return 1
  fi

  cat "$workdir/client.out" "$workdir/dtx.out"
  if ! grep -q "^DTXCLIENT requests=$dtx committed=$dtx aborted=0" \
      "$workdir/dtx.out"; then
    echo "FAIL: not every cross-shard transaction committed" >&2
    return 1
  fi
  if ! grep -q "^RECOVERED id=$victim shard=" \
      "$workdir/node-$victim-restart.out"; then
    echo "FAIL: victim did not recover its per-shard WALs" >&2
    cat "$workdir/node-$victim-restart.out" >&2
    return 1
  fi

  local finals=()
  for (( id = 1; id <= N; id++ )); do
    if (( id == victim )); then continue; fi
    finals+=("$workdir/node-$id.out")
  done
  finals+=("$workdir/node-$victim-restart.out")
  grep -h "^RECOVERED" "$workdir/node-$victim-restart.out"
  grep -h "^SMRLOG\|^DTX " "${finals[@]}"
  # Per-shard agreement: for each group, the N digests must be identical.
  local s digests lines
  for (( s = 0; s < SHARDS; s++ )); do
    digests=$(grep -h "^SMRLOG id=[0-9]* shard=$s " "${finals[@]}" \
                | sed 's/.*digest=//' | sort -u | wc -l)
    lines=$(grep -h "^SMRLOG id=[0-9]* shard=$s " "${finals[@]}" | wc -l)
    if [[ "$digests" -ne 1 || "$lines" -ne "$N" ]]; then
      echo "FAIL: shard $s logs diverged across the fleet" >&2
      return 1
    fi
  done
  # Dtx atomicity: every survivor's tracker converged to all-committed,
  # and NO replica observed an abort or left a tx in flight. The
  # restarted victim may legitimately report committed=0 — a transaction
  # wholly below its adopted checkpoint is garbage-collected bookkeeping;
  # the per-shard digest identity above already proves its logs carry the
  # same APPLY entries as everyone else's.
  local dtx_full dtx_clean
  dtx_full=$(grep -h \
      "^DTX id=[0-9]* committed=$dtx aborted=0 in_flight=0" \
      "${finals[@]}" | wc -l)
  dtx_clean=$(grep -h "^DTX id=[0-9]* committed=[0-9]* aborted=0 in_flight=0" \
      "${finals[@]}" | wc -l)
  if [[ "$dtx_full" -lt $(( N - 1 )) || "$dtx_clean" -ne "$N" ]]; then
    echo "FAIL: dtx outcomes diverged across the fleet" >&2
    grep -h "^DTX " "${finals[@]}" >&2
    return 1
  fi
  echo "OK: $N nodes x $SHARDS shards agreed per-shard through a SIGKILL" \
       "restart; $dtx/$dtx cross-shard transactions committed atomically"
  return 0
}

run_single_shot_mode() {
  local peers=$1
  pids=()
  for (( id = 1; id <= N; id++ )); do
    timeout $(( DEADLINE_MS / 1000 + LINGER_MS / 1000 + 15 )) \
      "$NODE_BIN" --id "$id" --peers "$peers" --protocol "$PROTOCOL" \
        --deadline-ms "$DEADLINE_MS" --linger-ms "$LINGER_MS" \
        $NODE_EXTRA_FLAGS \
        > "$workdir/node-$id.out" 2> "$workdir/node-$id.err" &
    pids+=($!)
  done

  local failures=0
  for (( id = 1; id <= N; id++ )); do
    wait "${pids[$((id - 1))]}" || failures=$((failures + 1))
  done
  pids=()
  if (( failures > 0 )); then
    # A bind failure (port stolen between attempts) is retryable; anything
    # else is a real failure — tell them apart by stderr content.
    if grep -lq "cannot start transport" "$workdir"/node-*.err 2>/dev/null; then
      return 2
    fi
    echo "FAIL: $failures/$N nodes did not decide" >&2
    cat "$workdir"/node-*.err >&2
    return 1
  fi

  local values count
  values=$(grep -h "^DECIDED" "$workdir"/node-*.out \
             | sed 's/.*value=//' | sort -u)
  count=$(cat "$workdir"/node-*.out | grep -c "^DECIDED")
  if [[ $(wc -l <<< "$values") -ne 1 || "$count" -ne "$N" ]]; then
    echo "FAIL: agreement violated or missing decisions" >&2
    grep -h "^DECIDED" "$workdir"/node-*.out >&2
    return 1
  fi

  echo "OK: $N/$N replicas decided value=$values"
  return 0
}

attempt=0
while (( attempt < 3 )); do
  attempt=$((attempt + 1))
  base_port=$(( 20000 + ( ( $$ + attempt * 1000 + RANDOM % 997 ) % 40000 ) ))
  peers=""
  for (( i = 0; i < N; i++ )); do
    peers+="${peers:+,}127.0.0.1:$(( base_port + i ))"
  done
  echo "attempt $attempt: protocol=$PROTOCOL n=$N peers=$peers"

  if [[ "$PROTOCOL" == client ]]; then
    run_client_mode "$base_port" "$peers"
  elif [[ "$PROTOCOL" == reads ]]; then
    run_reads_mode "$base_port" "$peers"
  elif [[ "$PROTOCOL" == restart ]]; then
    run_restart_mode "$base_port" "$peers"
  elif [[ "$PROTOCOL" == shard ]]; then
    run_shard_mode "$base_port" "$peers"
  else
    run_single_shot_mode "$peers"
  fi
  rc=$?
  if (( rc == 0 )); then
    exit 0
  elif (( rc == 2 )); then
    echo "port clash, retrying on a new range" >&2
    continue
  else
    exit 1
  fi
done

echo "FAIL: could not find a free port range" >&2
exit 1
