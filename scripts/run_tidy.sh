#!/usr/bin/env bash
# clang-tidy driver over src/ using the repo's curated .clang-tidy profile.
#
# Needs: clang-tidy on PATH and a build tree with compile_commands.json
# (CMake exports it unconditionally; any configured build dir works).
# Degrades to a skip — not a failure — when clang-tidy is unavailable, so
# gcc-only environments can still run the full local gate.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
TIDY="${CLANG_TIDY:-clang-tidy}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_tidy.sh: $TIDY not found — skipping (install clang-tidy or set CLANG_TIDY)" >&2
  exit 0
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_tidy.sh: $BUILD_DIR/compile_commands.json missing — configure first:" >&2
  echo "  cmake -B $BUILD_DIR -S ." >&2
  exit 1
fi

mapfile -t sources < <(find src -name '*.cpp' | sort)
echo "== clang-tidy over ${#sources[@]} files ($JOBS jobs)"

if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "$TIDY" -p "$BUILD_DIR" -j "$JOBS" \
    -quiet "${sources[@]}"
else
  fail=0
  for f in "${sources[@]}"; do
    "$TIDY" -p "$BUILD_DIR" --quiet "$f" || fail=1
  done
  exit "$fail"
fi
