#!/usr/bin/env bash
# Runs every bench binary under build/bench and emits, per bench:
#   <outdir>/<bench>.json — google-benchmark JSON (perf trajectory)
#   <outdir>/<bench>.txt  — the figure/table reproduction text
# plus a combined <outdir>/manifest.json recording per-bench status.
#
# Fails loudly (nonzero exit) when no bench binaries exist, when any bench
# crashes or exits nonzero, or when a bench fails to produce its JSON —
# a silently-skipped bench must never look like a green run.
#
# The manifest picks up every bench/bench_*.cpp binary automatically;
# that includes bench_smr_throughput (SMR window × batch sweep — its
# default run prints the table and JSON; the nightly smr-smoke job runs
# it separately with --smoke-bound-x=5 as a regression gate) and
# bench_sharding (S-group scaling sweep; CI's shard-smoke job runs it
# with --smoke as the S=4 >= 2.5x S=1 regression gate).
#
# usage: scripts/run_benches.sh [outdir] [build-dir]
set -euo pipefail

outdir="${1:-bench-results}"
builddir="${2:-build}"

if ! compgen -G "${builddir}/bench/bench_*" >/dev/null; then
  echo "error: no bench binaries under ${builddir}/bench — build first:" >&2
  echo "  cmake -B ${builddir} -S . && cmake --build ${builddir} -j" >&2
  exit 1
fi

mkdir -p "${outdir}"
manifest="${outdir}/manifest.json"

status=0
ran=0
failed=0
entries=""
for bench in "${builddir}"/bench/bench_*; do
  if [ ! -x "${bench}" ]; then
    echo "error: ${bench} exists but is not executable" >&2
    status=1
    continue
  fi
  name="$(basename "${bench}")"
  echo "== ${name}"
  bench_status="ok"
  exit_code=0
  "${bench}" \
      --benchmark_out="${outdir}/${name}.json" \
      --benchmark_out_format=json \
      >"${outdir}/${name}.txt" 2>&1 || exit_code=$?
  if [ "${exit_code}" -ne 0 ]; then
    bench_status="failed"
    echo "   FAILED exit=${exit_code} (see ${outdir}/${name}.txt)" >&2
    status=1
    failed=$((failed + 1))
  elif [ ! -s "${outdir}/${name}.json" ]; then
    bench_status="no-json"
    echo "   FAILED: produced no JSON output" >&2
    status=1
    failed=$((failed + 1))
  fi
  ran=$((ran + 1))
  [ -n "${entries}" ] && entries="${entries},"
  entries="${entries}
    {\"name\": \"${name}\", \"status\": \"${bench_status}\", \
\"exit_code\": ${exit_code}, \"json\": \"${name}.json\", \
\"txt\": \"${name}.txt\"}"
done

# Machine-readable SMR summary: committed-commands/sec plus checkpoint
# and WAL-recovery timings. The repo keeps a committed copy of this file
# (BENCH_smr.json at the repo root) as the durability baseline.
if [ -x "${builddir}/bench/bench_smr_throughput" ]; then
  echo "== BENCH_smr.json (throughput + checkpoint/recovery timings)"
  if ! "${builddir}/bench/bench_smr_throughput" \
      --emit-json="${outdir}/BENCH_smr.json"; then
    echo "   FAILED: bench_smr_throughput --emit-json" >&2
    status=1
    failed=$((failed + 1))
  fi
fi

# Machine-readable sharding summary: aggregate throughput for S in
# {1,2,4,8} consensus groups plus cross-shard tx latency. The repo keeps
# a committed copy (BENCH_sharding.json at the repo root) as the scaling
# baseline; CI gates on S=4 >= 2.5x S=1 via --smoke.
if [ -x "${builddir}/bench/bench_sharding" ]; then
  echo "== BENCH_sharding.json (shard scaling + dtx latency)"
  if ! "${builddir}/bench/bench_sharding" \
      --emit-json="${outdir}/BENCH_sharding.json"; then
    echo "   FAILED: bench_sharding --emit-json" >&2
    status=1
    failed=$((failed + 1))
  fi
fi

# Machine-readable read-path summary: served ops/sec across read ratio x
# consistency for the n=4 and n=32 fleets, plus the write-path digest
# pin. The repo keeps a committed copy (BENCH_reads.json at the repo
# root) as the read fast-path baseline; CI gates on linearizable reads
# at ratio 0.99 >= 5x all-writes via --smoke.
if [ -x "${builddir}/bench/bench_reads" ]; then
  echo "== BENCH_reads.json (read ratio x consistency sweep)"
  if ! "${builddir}/bench/bench_reads" \
      --emit-json="${outdir}/BENCH_reads.json"; then
    echo "   FAILED: bench_reads --emit-json" >&2
    status=1
    failed=$((failed + 1))
  fi
fi

# Provenance: pin the manifest to the exact tree and wall-clock moment
# the numbers came from, so archived bench-results stay comparable.
git_sha="$(git -C "$(dirname "$0")/.." rev-parse HEAD 2>/dev/null || echo unknown)"
generated_utc="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

cat >"${manifest}" <<EOF
{
  "git_sha": "${git_sha}",
  "generated_utc": "${generated_utc}",
  "benches_run": ${ran},
  "benches_failed": ${failed},
  "ok": $([ "${status}" -eq 0 ] && echo true || echo false),
  "benches": [${entries}
  ]
}
EOF

echo "wrote $(ls "${outdir}"/*.json 2>/dev/null | wc -l) JSON files to ${outdir}/ (manifest: ${manifest})"
if [ "${status}" -ne 0 ]; then
  echo "error: ${failed} bench(es) failed" >&2
fi
exit "${status}"
