#!/usr/bin/env bash
# Runs every bench binary under build/bench and emits, per bench:
#   <outdir>/<bench>.json — google-benchmark JSON (perf trajectory)
#   <outdir>/<bench>.txt  — the figure/table reproduction text
#
# usage: scripts/run_benches.sh [outdir] [build-dir]
set -euo pipefail

outdir="${1:-bench-results}"
builddir="${2:-build}"

if ! compgen -G "${builddir}/bench/bench_*" >/dev/null; then
  echo "error: no bench binaries under ${builddir}/bench — build first:" >&2
  echo "  cmake -B ${builddir} -S . && cmake --build ${builddir} -j" >&2
  exit 1
fi

mkdir -p "${outdir}"

status=0
for bench in "${builddir}"/bench/bench_*; do
  [ -x "${bench}" ] || continue
  name="$(basename "${bench}")"
  echo "== ${name}"
  if ! "${bench}" \
      --benchmark_out="${outdir}/${name}.json" \
      --benchmark_out_format=json \
      >"${outdir}/${name}.txt" 2>&1; then
    echo "   FAILED (see ${outdir}/${name}.txt)" >&2
    status=1
  fi
done

echo "wrote $(ls "${outdir}"/*.json 2>/dev/null | wc -l) JSON files to ${outdir}/"
exit "${status}"
