#!/usr/bin/env bash
# Protocol lint driver: self-test the lint against its golden fixtures,
# then lint the real tree. Mirrors the CI static-analysis job; run before
# sending any change that touches wire formats, tags, or syscall sites.
set -euo pipefail

cd "$(dirname "$0")/.."

PYTHON="${PYTHON:-python3}"
if ! command -v "$PYTHON" >/dev/null 2>&1; then
  echo "run_lint.sh: $PYTHON not found" >&2
  exit 1
fi

echo "== lint_protocol --self-test (golden fixtures)"
"$PYTHON" tools/lint_protocol.py --self-test

echo "== lint_protocol (real tree)"
"$PYTHON" tools/lint_protocol.py --root .
