#!/usr/bin/env python3
"""Protocol lint: wire-invariant checks the type system cannot express.

Three rules, each scoped to the directories named below:

  TAGS    Every `k*Tag` constant in src/ is either declared in the central
          registry (src/net/tags.hpp) or is a re-export of a registry
          constant. Inside the registry: no two constants share a value,
          and every constant is listed in detail::kAll (so the C++
          static_assert actually covers it).

  DECODE  Every codec entry point in src/ (a struct with a
          `static T decode(...)` or `static T from_bytes(...)`) has a
          hostile-buffer test: some tests/*.cpp mentions the type AND
          exercises a hostile keyword (truncation, corruption, trailing
          bytes, oversize, CodecError, ...). Honest-roundtrip-only
          coverage does not count.

  THREAD  Durability and batched-write syscalls stay confined to their
          owning modules: fsync(2) call sites only in src/store/wal.cpp,
          sendmsg(2) call sites only in src/net/tcp_transport.cpp. A
          stray fsync is a fsync-ordering bug waiting to happen; a stray
          sendmsg bypasses the transport's write batching and frame
          accounting.

Exit status: 0 when clean, 1 when any rule fired (findings on stdout),
2 on usage/internal errors.

`--self-test` runs the lint against the golden fixtures in
tests/lint_fixtures/ and verifies each seeded defect is caught (and
nothing else fires), so the lint itself is regression-tested.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

HOSTILE_KEYWORDS = re.compile(
    r"truncat|corrupt|garbage|trailing|oversiz|malform|hostile|CodecError",
    re.IGNORECASE,
)

TAG_CONST_RE = re.compile(
    r"\bk\w*Tag\s*=\s*(?:0[xX][0-9a-fA-F]+|\d+)\b"
)
REGISTRY_CONST_RE = re.compile(
    r"inline\s+constexpr\s+std::uint8_t\s+(k\w+)\s*=\s*(0[xX][0-9a-fA-F]+|\d+)\s*;"
)
KALL_BLOCK_RE = re.compile(r"kAll\[\]\s*=\s*\{(.*?)\}\s*;", re.DOTALL)
DECODE_RE = re.compile(r"static\s+(\w+)\s+(?:decode|from_bytes)\s*\(")

REGISTRY_REL = Path("src/net/tags.hpp")
FSYNC_OWNER = Path("src/store/wal.cpp")
SENDMSG_OWNER = Path("src/net/tcp_transport.cpp")


def strip_comments(text: str) -> str:
    """Remove // and /* */ comments and string literals, preserving line
    structure so reported line numbers stay correct."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            end = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:end]))
            i = end
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            i = min(j + 1, n)
            out.append(quote + quote)
        else:
            out.append(c)
            i += 1
    return "".join(out)


def iter_sources(root: Path, subdir: str, suffixes=(".hpp", ".cpp", ".h", ".cc")):
    base = root / subdir
    if not base.is_dir():
        return
    for path in sorted(base.rglob("*")):
        if path.is_file() and path.suffix in suffixes:
            yield path


def finding(findings, rule, path, line, message):
    findings.append(f"{rule} {path}:{line}: {message}")


def check_tags(root: Path, findings: list):
    registry = root / REGISTRY_REL
    registry_names = {}
    if registry.is_file():
        text = strip_comments(registry.read_text())
        for m in REGISTRY_CONST_RE.finditer(text):
            name, value = m.group(1), int(m.group(2), 0)
            line = text[: m.start()].count("\n") + 1
            if name in registry_names:
                finding(findings, "TAGS", registry, line,
                        f"duplicate registry constant {name}")
            registry_names[name] = (value, line)
        by_value = {}
        for name, (value, line) in registry_names.items():
            if value in by_value:
                finding(findings, "TAGS", registry, line,
                        f"tag collision: {name} = {value:#04x} duplicates "
                        f"{by_value[value]}")
            else:
                by_value[value] = name
        kall = KALL_BLOCK_RE.search(text)
        if kall is None:
            finding(findings, "TAGS", registry, 1,
                    "registry has no detail::kAll coverage list")
        else:
            listed = set(re.findall(r"k\w+", kall.group(1)))
            for name, (_, line) in sorted(registry_names.items()):
                if name not in listed:
                    finding(findings, "TAGS", registry, line,
                            f"{name} missing from detail::kAll — the "
                            "uniqueness static_assert does not cover it")
    else:
        finding(findings, "TAGS", registry, 1, "central tag registry missing")

    for path in iter_sources(root, "src"):
        if path == registry:
            continue
        text = strip_comments(path.read_text())
        for m in TAG_CONST_RE.finditer(text):
            line = text[: m.start()].count("\n") + 1
            finding(findings, "TAGS", path, line,
                    "k*Tag bound to a numeric literal outside the registry "
                    "— declare the value in src/net/tags.hpp and re-export")


def check_decode(root: Path, findings: list):
    # type name -> (file, line) of first decode/from_bytes declaration
    entry_points = {}
    for path in iter_sources(root, "src", suffixes=(".hpp", ".h")):
        text = strip_comments(path.read_text())
        for m in DECODE_RE.finditer(text):
            type_name = m.group(1)
            line = text[: m.start()].count("\n") + 1
            entry_points.setdefault(type_name, (path, line))

    tests = []
    for path in iter_sources(root, "tests", suffixes=(".cpp", ".cc")):
        # Comments are stripped so prose ABOUT hostile buffers does not
        # count as coverage — only code (test names, CodecError asserts).
        text = strip_comments(path.read_text())
        tests.append((path, text, bool(HOSTILE_KEYWORDS.search(text))))

    for type_name, (path, line) in sorted(entry_points.items()):
        covered = any(hostile and re.search(rf"\b{type_name}\b", text)
                      for _, text, hostile in tests)
        if not covered:
            finding(findings, "DECODE", path, line,
                    f"{type_name} has a decode entry point but no "
                    "hostile-buffer test in tests/ (need the type name in a "
                    "test file that exercises truncation/corruption/"
                    "trailing-bytes/CodecError)")


def check_thread(root: Path, findings: list):
    confined = [
        (re.compile(r"\bfsync\s*\("), FSYNC_OWNER, "fsync(2)"),
        (re.compile(r"\bsendmsg\s*\("), SENDMSG_OWNER, "sendmsg(2)"),
    ]
    for path in iter_sources(root, "src"):
        rel = path.relative_to(root)
        text = strip_comments(path.read_text())
        for pattern, owner, what in confined:
            if rel == owner:
                continue
            for m in pattern.finditer(text):
                line = text[: m.start()].count("\n") + 1
                finding(findings, "THREAD", path, line,
                        f"{what} call site outside its owning module "
                        f"({owner})")


def run_lint(root: Path) -> list:
    findings = []
    check_tags(root, findings)
    check_decode(root, findings)
    check_thread(root, findings)
    return findings


def self_test(repo_root: Path) -> int:
    """Each fixture seeds exactly one class of defect; the lint must catch
    it, attribute it to the right rule, and stay quiet otherwise."""
    fixtures = repo_root / "tests" / "lint_fixtures"
    expectations = {
        "tag_collision": "TAGS",
        "scattered_tag": "TAGS",
        "missing_hostile_test": "DECODE",
        "stray_fsync": "THREAD",
    }
    failures = 0
    for name, rule in sorted(expectations.items()):
        fixture = fixtures / name
        if not fixture.is_dir():
            print(f"SELF-TEST FAIL: fixture {fixture} missing")
            failures += 1
            continue
        findings = run_lint(fixture)
        hits = [f for f in findings if f.startswith(rule + " ")]
        strays = [f for f in findings if not f.startswith(rule + " ")]
        if not hits:
            print(f"SELF-TEST FAIL: {name}: expected a {rule} finding, got "
                  f"{findings or 'nothing'}")
            failures += 1
        elif strays:
            print(f"SELF-TEST FAIL: {name}: unexpected extra findings "
                  f"{strays}")
            failures += 1
        else:
            print(f"self-test ok: {name}: {len(hits)} {rule} finding(s)")
    if failures:
        return 1
    print("self-test: all fixtures behave")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root to lint (default: repo root)")
    parser.add_argument("--self-test", action="store_true",
                        help="lint the golden fixtures instead of --root")
    args = parser.parse_args()

    if args.self_test:
        return self_test(Path(__file__).resolve().parent.parent)

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"error: {root} has no src/ directory", file=sys.stderr)
        return 2
    findings = run_lint(root)
    for f in findings:
        print(f)
    if findings:
        print(f"lint_protocol: {len(findings)} finding(s)")
        return 1
    print("lint_protocol: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
