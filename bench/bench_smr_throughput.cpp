// SMR pipeline/batching throughput (ISSUE 5 tentpole): committed
// commands per simulated second across window × batch size, against the
// serial single-command engine as the baseline row (W = 1, batch = 1
// reproduces the old open-one-slot-at-a-time loop).
//
// A fleet of SmrReplicas runs on the deterministic simulator network;
// the workload (256 requests from one client) is preloaded at the
// round-robin leader, so the measured time is the engine's, not the
// arrival process's. Reported per row: virtual-time throughput, speedup
// over the baseline, completion-time quantiles at the leader, and slots
// used. The harness also asserts the pipeline's content-invariance
// property: for a fixed batch size, per-seed slot logs are bit-identical
// across window sizes (the window changes scheduling, never content).
//
// --smoke-bound-x=K runs one baseline + one pipelined configuration at
// n = 32 and exits nonzero unless the pipelined engine clears K× the
// baseline throughput with identical logs — the CI regression gate for
// the ≥ 5× acceptance bar.
//
// --emit-json=PATH writes BENCH_smr.json instead: committed-commands/sec
// (serial vs pipelined), checkpoint certification overhead, and a timed
// reconstruction of a replica from a leader's real fsync'd WAL
// (scripts/run_benches.sh calls this and the result is committed
// in-repo as the durability baseline).
//
// Log identity is judged by the chained log digest (SmrReplica::
// log_digest()), never by comparing retained slot windows: stable
// checkpoints truncate slot_log() at replica-dependent times.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/verify_pool.hpp"
#include "net/network.hpp"
#include "smr/preverify.hpp"
#include "smr/smr_replica.hpp"
#include "store/wal.hpp"

namespace {

using namespace probft;

struct FleetRun {
  bool completed = false;
  bool identical = false;   // all replicas ended with equal slot logs
  TimePoint all_done = 0;   // virtual µs until every replica executed all
  double wall_ms = 0.0;
  std::uint64_t slots = 0;
  std::string digest;       // leader's slot-log digest
  std::vector<TimePoint> exec_at;  // per-command execution time (leader)
};

FleetRun run_fleet(std::uint32_t n, smr::SmrOptions options,
                   std::uint64_t commands, std::uint64_t seed,
                   store::Wal* leader_wal = nullptr) {
  net::Simulator sim;
  net::LatencyConfig latency;  // defaults: synchronous, 1–10 ms delays
  net::Network network(sim, n, seed, latency);
  const auto suite = crypto::make_sim_suite();

  std::vector<crypto::KeyPair> keys(n + 1);
  std::vector<Bytes> key_table(n + 1);
  for (ReplicaId id = 1; id <= n; ++id) {
    keys[id] = suite->keygen(mix64(seed, id));
    key_table[id] = keys[id].public_key;
  }
  const crypto::PublicKeyDir public_keys(std::move(key_table));

  std::vector<std::unique_ptr<smr::SmrReplica>> replicas(n + 1);
  FleetRun run;
  run.exec_at.resize(commands, 0);
  for (ReplicaId id = 1; id <= n; ++id) {
    smr::SmrConfig cfg;
    cfg.id = id;
    cfg.n = n;
    cfg.f = 0;
    cfg.pipeline = options;
    cfg.suite = suite.get();
    cfg.secret_key = keys[id].secret_key;
    cfg.public_keys = public_keys;
    cfg.sync.base_timeout = 100'000;
    if (id == 1) cfg.wal = leader_wal;
    core::ProtocolHost host;
    host.send = [&network, id](ReplicaId to, std::uint8_t tag,
                               const Bytes& m) {
      network.send(id, to, tag, m);
    };
    host.broadcast = [&network, id](std::uint8_t tag, const Bytes& m) {
      network.broadcast(id, tag, m);
    };
    host.set_timer = [&sim](Duration d, std::function<void()> fn) {
      sim.schedule_after(d, std::move(fn));
    };
    host.on_commit = [&run, &sim, id](std::uint64_t index, const Bytes&) {
      if (id == 1 && index < run.exec_at.size()) {
        run.exec_at[index] = sim.now();
      }
    };
    replicas[id] = std::make_unique<smr::SmrReplica>(std::move(cfg), host);
    network.register_handler(
        id, [&replicas, id](ReplicaId from, std::uint8_t tag,
                            const Bytes& m) {
          replicas[id]->on_message(from, tag, m);
        });
  }

  // Preloaded single-client workload at the leader.
  for (std::uint64_t i = 1; i <= commands; ++i) {
    (void)replicas[1]->submit_request(9001, i,
                                      to_bytes("op-" + std::to_string(i)));
  }
  for (ReplicaId id = 1; id <= n; ++id) replicas[id]->start();

  // A replica is done once its execution count covers the workload —
  // whether it executed every command itself or jumped ahead through a
  // certified state transfer (which installs exec_count without replaying
  // the truncated commands, so counting on_commit calls undercounts).
  const auto t0 = std::chrono::steady_clock::now();
  while (sim.now() < 600'000'000) {
    bool all = true;
    for (ReplicaId id = 1; id <= n; ++id) {
      if (replicas[id]->executed_commands() < commands) {
        all = false;
        break;
      }
    }
    if (all) {
      run.completed = true;
      run.all_done = sim.now();
      break;
    }
    if (!sim.step()) break;
  }
  run.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  // Chained log digest, not a digest of the retained slot window: stable
  // checkpoints truncate slot_log() at replica-dependent times, so only
  // the truncation-invariant chain identifies "same history".
  run.identical = true;
  for (ReplicaId id = 2; id <= n; ++id) {
    if (replicas[id]->log_digest() != replicas[1]->log_digest()) {
      run.identical = false;
    }
  }
  run.slots = replicas[1]->committed_slots();
  run.digest = replicas[1]->log_digest();
  return run;
}

TimePoint quantile(std::vector<TimePoint> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const std::size_t idx = std::min(
      values.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(values.size())));
  return values[idx];
}

void print_table(std::uint32_t n, std::uint64_t commands) {
  std::printf(
      "\n================================================================\n"
      "SMR pipeline throughput — committed commands per simulated second\n"
      "(n = %u, %llu preloaded commands, seed 1; W=1/batch=1 is the old\n"
      "serial engine)\n"
      "================================================================\n",
      n, static_cast<unsigned long long>(commands));
  std::printf("%-8s %-8s %-7s %-12s %-9s %-11s %-11s %s\n", "window",
              "batch", "slots", "kcmd/vsec", "speedup", "p50-ms", "p99-ms",
              "identical-logs");
  const struct {
    std::uint32_t window, batch;
  } rows[] = {{1, 1}, {1, 16}, {4, 4}, {8, 16}, {16, 32}};
  double baseline = 0.0;
  for (const auto& row : rows) {
    smr::SmrOptions options;
    options.window = row.window;
    options.batch_max_commands = row.batch;
    options.max_slots = 1u << 20;
    const FleetRun run = run_fleet(n, options, commands, /*seed=*/1);
    const double throughput =
        run.all_done > 0
            ? static_cast<double>(commands) * 1e6 /
                  static_cast<double>(run.all_done) / 1e3
            : 0.0;
    if (row.window == 1 && row.batch == 1) baseline = throughput;
    std::printf("%-8u %-8u %-7llu %-12.2f %-9.2f %-11.1f %-11.1f %s\n",
                row.window, row.batch,
                static_cast<unsigned long long>(run.slots), throughput,
                baseline > 0 ? throughput / baseline : 0.0,
                static_cast<double>(quantile(run.exec_at, 0.5)) / 1000.0,
                static_cast<double>(quantile(run.exec_at, 0.99)) / 1000.0,
                run.completed ? (run.identical ? "yes" : "NO") : "DNF");
  }

  // Window invariance: same batch size, different windows — bit-identical
  // per-seed logs (the acceptance property the pipeline must preserve).
  smr::SmrOptions serial;
  serial.window = 1;
  serial.batch_max_commands = 16;
  serial.max_slots = 1u << 20;
  smr::SmrOptions pipelined = serial;
  pipelined.window = 8;
  const auto a = run_fleet(n, serial, commands, /*seed=*/1);
  const auto b = run_fleet(n, pipelined, commands, /*seed=*/1);
  std::printf("\nwindow-invariance (batch=16): W=1 vs W=8 slot logs %s\n",
              a.digest == b.digest ? "bit-identical" : "DIFFER (BUG)");
}

/// CI regression gate: pipelined throughput must clear `bound_x` times
/// the serial baseline with bit-identical logs across windows.
int run_smoke(std::uint32_t n, std::uint64_t commands, double bound_x) {
  smr::SmrOptions serial;
  serial.window = 1;
  serial.batch_max_commands = 1;
  serial.max_slots = 1u << 20;
  const FleetRun base = run_fleet(n, serial, commands, /*seed=*/1);

  smr::SmrOptions pipelined;
  pipelined.window = 8;
  pipelined.batch_max_commands = 16;
  pipelined.max_slots = 1u << 20;
  const FleetRun fast = run_fleet(n, pipelined, commands, /*seed=*/1);

  // Same batch as the pipelined row, serial window: content must match.
  smr::SmrOptions serial_batched = pipelined;
  serial_batched.window = 1;
  const FleetRun check = run_fleet(n, serial_batched, commands, /*seed=*/1);

  const double speedup =
      base.all_done > 0 && fast.all_done > 0
          ? static_cast<double>(base.all_done) /
                static_cast<double>(fast.all_done)
          : 0.0;
  std::printf("smr smoke: n=%u commands=%llu serial=%lluus pipelined=%lluus "
              "speedup=%.1fx bound=%.1fx identical=%d window_invariant=%d\n",
              n, static_cast<unsigned long long>(commands),
              static_cast<unsigned long long>(base.all_done),
              static_cast<unsigned long long>(fast.all_done), speedup,
              bound_x, base.identical && fast.identical ? 1 : 0,
              fast.digest == check.digest ? 1 : 0);
  if (!base.completed || !fast.completed || !check.completed ||
      !base.identical || !fast.identical || !check.identical) {
    std::fprintf(stderr,
                 "smr smoke: BAD OUTCOME completed=%d/%d/%d "
                 "identical=%d/%d/%d\n",
                 base.completed, fast.completed, check.completed,
                 base.identical, fast.identical, check.identical);
    return 2;
  }
  if (fast.digest != check.digest) {
    std::fprintf(stderr, "smr smoke: logs differ across window sizes\n");
    return 2;
  }
  if (speedup < bound_x) {
    std::fprintf(stderr, "smr smoke: speedup %.1fx below %.1fx\n", speedup,
                 bound_x);
    return 1;
  }
  return 0;
}

double kcmd_per_vsec(const FleetRun& run, std::uint64_t commands) {
  if (run.all_done == 0) return 0.0;
  return static_cast<double>(commands) * 1e6 /
         static_cast<double>(run.all_done) / 1e3;
}

// ---- --verify-threads sweep: record-and-replay admission throughput ----
//
// The multi-core replica's verification pool cannot be measured inside
// the deterministic simulator (it is single-threaded by design), so the
// sweep uses record-and-replay: run one n-replica fleet under REAL
// Ed25519 + ECVRF, record every wire message one follower receives, then
// replay that exact inbound trace into a fresh replica whose admission
// runs through a core::VerifyPool at various thread counts. Wall-clock
// commits/sec measures the pool; the chained log digest must equal the
// recorded fleet's digest for every thread count (the pool is
// semantically invisible or it is broken).

struct RecordedTrace {
  struct Msg {
    ReplicaId from = 0;
    std::uint8_t tag = 0;
    Bytes payload;
  };
  std::vector<Msg> inbound;  // the follower's wire traffic, in order
  std::string digest;        // log digest the follower reached
  std::uint64_t executed = 0;
  std::uint32_t n = 0;
  std::uint64_t seed = 0;
  ReplicaId target = 0;
  smr::SmrOptions options;
  bool completed = false;
};

RecordedTrace record_trace(std::uint32_t n, smr::SmrOptions options,
                           std::uint64_t commands, std::uint64_t seed,
                           ReplicaId target) {
  net::Simulator sim;
  net::LatencyConfig latency;
  net::Network network(sim, n, seed, latency);
  const auto suite = crypto::make_ed25519_suite();

  std::vector<crypto::KeyPair> keys(n + 1);
  std::vector<Bytes> key_table(n + 1);
  for (ReplicaId id = 1; id <= n; ++id) {
    keys[id] = suite->keygen(mix64(seed, id));
    key_table[id] = keys[id].public_key;
  }
  const crypto::PublicKeyDir public_keys(std::move(key_table));

  RecordedTrace trace;
  trace.n = n;
  trace.seed = seed;
  trace.target = target;
  trace.options = options;

  std::vector<std::unique_ptr<smr::SmrReplica>> replicas(n + 1);
  for (ReplicaId id = 1; id <= n; ++id) {
    smr::SmrConfig cfg;
    cfg.id = id;
    cfg.n = n;
    cfg.f = 0;
    cfg.pipeline = options;
    cfg.suite = suite.get();
    cfg.secret_key = keys[id].secret_key;
    cfg.public_keys = public_keys;
    cfg.sync.base_timeout = 100'000;
    core::ProtocolHost host;
    host.send = [&network, id](ReplicaId to, std::uint8_t tag,
                               const Bytes& m) {
      network.send(id, to, tag, m);
    };
    host.broadcast = [&network, id](std::uint8_t tag, const Bytes& m) {
      network.broadcast(id, tag, m);
    };
    host.set_timer = [&sim](Duration d, std::function<void()> fn) {
      sim.schedule_after(d, std::move(fn));
    };
    replicas[id] = std::make_unique<smr::SmrReplica>(std::move(cfg), host);
    network.register_handler(
        id, [&replicas, &trace, id, target](ReplicaId from, std::uint8_t tag,
                                            const Bytes& m) {
          if (id == target) trace.inbound.push_back({from, tag, m});
          replicas[id]->on_message(from, tag, m);
        });
  }

  for (std::uint64_t i = 1; i <= commands; ++i) {
    (void)replicas[1]->submit_request(9001, i,
                                      to_bytes("op-" + std::to_string(i)));
  }
  for (ReplicaId id = 1; id <= n; ++id) replicas[id]->start();

  while (sim.now() < 600'000'000) {
    bool all = true;
    for (ReplicaId id = 1; id <= n; ++id) {
      if (replicas[id]->executed_commands() < commands) {
        all = false;
        break;
      }
    }
    if (all) {
      trace.completed = true;
      break;
    }
    if (!sim.step()) break;
  }
  trace.digest = replicas[target]->log_digest();
  trace.executed = replicas[target]->executed_commands();
  return trace;
}

double dquantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t idx = std::min(
      values.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(values.size())));
  return values[idx];
}

struct ReplayResult {
  unsigned threads = 0;
  double wall_ms = 0.0;
  double kcmd_per_sec = 0.0;       // executed commands / wall second
  double kcmd_per_sec_core = 0.0;  // per core: tput / (1 + threads)
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;  // submit→ready
  bool digest_ok = false;
  std::uint64_t executed = 0;
};

ReplayResult replay_trace(const RecordedTrace& trace, unsigned threads) {
  const auto suite = crypto::make_ed25519_suite();
  std::vector<crypto::KeyPair> keys(trace.n + 1);
  std::vector<Bytes> key_table(trace.n + 1);
  for (ReplicaId id = 1; id <= trace.n; ++id) {
    keys[id] = suite->keygen(mix64(trace.seed, id));
    key_table[id] = keys[id].public_key;
  }
  const crypto::PublicKeyDir public_keys(std::move(key_table));

  auto cache = std::make_shared<core::VerdictCache>(/*thread_safe=*/true);
  smr::SmrConfig cfg;
  cfg.id = trace.target;
  cfg.n = trace.n;
  cfg.f = 0;
  cfg.pipeline = trace.options;
  cfg.suite = suite.get();
  cfg.secret_key = keys[trace.target].secret_key;
  cfg.public_keys = public_keys;
  cfg.verdicts = cache;
  cfg.sync.base_timeout = 100'000;
  core::ProtocolHost host;  // outbound traffic goes nowhere: pure follower
  host.send = [](ReplicaId, std::uint8_t, const Bytes&) {};
  host.broadcast = [](std::uint8_t, const Bytes&) {};
  host.set_timer = [](Duration, std::function<void()>) {};
  smr::SmrReplica replica(std::move(cfg), host);

  core::PreverifyContext ctx;
  {
    core::ReplicaConfig rc;  // derive sample_size exactly as the replica
    rc.n = trace.n;
    rc.f = 0;
    ctx.sample_size = rc.sample_size();
  }
  ctx.n = trace.n;
  ctx.suite = suite.get();
  ctx.public_keys = public_keys;
  core::VerifyPool pool(ctx, cache, threads, smr::preverify_tasks);
  pool.record_latencies(true);

  replica.start();
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& m : trace.inbound) pool.submit(m.from, m.tag, m.payload);
  std::size_t delivered = 0;
  while (delivered < trace.inbound.size()) {
    pool.wait_ready();
    delivered += pool.drain(
        [&replica](ReplicaId from, std::uint8_t tag, const Bytes& m) {
          replica.on_message(from, tag, m);
        });
  }
  ReplayResult result;
  result.threads = threads;
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  result.executed = replica.executed_commands();
  result.digest_ok = replica.log_digest() == trace.digest &&
                     result.executed == trace.executed;
  if (result.wall_ms > 0) {
    result.kcmd_per_sec = static_cast<double>(result.executed) /
                          (result.wall_ms / 1e3) / 1e3;
    result.kcmd_per_sec_core =
        result.kcmd_per_sec / static_cast<double>(1 + threads);
  }
  auto lat = pool.take_latencies_us();
  result.p50_us = dquantile(lat, 0.5);
  result.p95_us = dquantile(lat, 0.95);
  result.p99_us = dquantile(lat, 0.99);
  return result;
}

constexpr unsigned kVerifySweepThreads[] = {0, 1, 2, 4};

std::vector<ReplayResult> verify_sweep(std::uint32_t n,
                                       std::uint64_t commands,
                                       RecordedTrace* trace_out = nullptr) {
  smr::SmrOptions options;
  options.window = 8;
  options.batch_max_commands = 16;
  options.max_slots = 1u << 20;
  const RecordedTrace trace =
      record_trace(n, options, commands, /*seed=*/1, /*target=*/2);
  std::vector<ReplayResult> rows;
  for (const unsigned threads : kVerifySweepThreads) {
    rows.push_back(replay_trace(trace, threads));
  }
  if (trace_out != nullptr) *trace_out = trace;
  return rows;
}

void print_verify_sweep(std::uint32_t n, std::uint64_t commands) {
  std::printf(
      "\n================================================================\n"
      "Verification pool — replaying one follower's recorded Ed25519\n"
      "wire trace (n = %u, %llu commands) through a core::VerifyPool\n"
      "(threads = 0 is inline single-threaded admission; %u cores here)\n"
      "================================================================\n",
      n, static_cast<unsigned long long>(commands),
      std::thread::hardware_concurrency());
  std::printf("%-9s %-10s %-14s %-9s %-9s %-9s %-9s %s\n", "threads",
              "kcmd/sec", "kcmd/sec/core", "speedup", "p50-us", "p95-us",
              "p99-us", "digest");
  const auto rows = verify_sweep(n, commands);
  const double base = rows.empty() ? 0.0 : rows.front().kcmd_per_sec;
  for (const auto& row : rows) {
    std::printf("%-9u %-10.2f %-14.2f %-9.2f %-9.0f %-9.0f %-9.0f %s\n",
                row.threads, row.kcmd_per_sec, row.kcmd_per_sec_core,
                base > 0 ? row.kcmd_per_sec / base : 0.0, row.p50_us,
                row.p95_us, row.p99_us,
                row.digest_ok ? "identical" : "DIFFERS (BUG)");
  }
}

/// CI gate for the pool: digest identity is enforced unconditionally on
/// any machine; the ≥ bound_x speedup for 4 worker threads additionally
/// requires a runner with at least 4 cores (a 1-core container cannot
/// demonstrate parallel speedup and must not fail the build for it).
int run_verify_smoke(std::uint32_t n, std::uint64_t commands,
                     double bound_x) {
  RecordedTrace trace;
  const auto rows = verify_sweep(n, commands, &trace);
  if (!trace.completed || trace.executed < commands) {
    std::fprintf(stderr, "verify smoke: recording fleet did not finish\n");
    return 2;
  }
  const double base = rows.front().kcmd_per_sec;
  double at4 = 0.0;
  for (const auto& row : rows) {
    std::printf("verify smoke: threads=%u kcmd/sec=%.2f digest_ok=%d\n",
                row.threads, row.kcmd_per_sec, row.digest_ok ? 1 : 0);
    if (!row.digest_ok) {
      std::fprintf(stderr,
                   "verify smoke: digest diverged at threads=%u — the pool "
                   "changed protocol behavior\n",
                   row.threads);
      return 2;
    }
    if (row.threads == 4) at4 = row.kcmd_per_sec;
  }
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores >= 4) {
    const double speedup = base > 0 ? at4 / base : 0.0;
    std::printf("verify smoke: speedup@4=%.2fx bound=%.1fx cores=%u\n",
                speedup, bound_x, cores);
    if (speedup < bound_x) {
      std::fprintf(stderr, "verify smoke: speedup %.2fx below %.1fx\n",
                   speedup, bound_x);
      return 1;
    }
  } else {
    std::printf("verify smoke: %u cores < 4, speedup bound skipped "
                "(digest identity still enforced)\n",
                cores);
  }
  return 0;
}

/// Machine-readable summary (BENCH_smr.json): committed-commands/sec for
/// the serial and pipelined engines, checkpoint overhead, and a timed
/// WAL recovery of a fresh replica from a leader's real on-disk log.
int emit_json(const std::string& path, std::uint32_t n,
              std::uint64_t commands) {
  smr::SmrOptions serial;
  serial.window = 1;
  serial.batch_max_commands = 1;
  serial.max_slots = 1u << 20;
  smr::SmrOptions pipelined;
  pipelined.window = 8;
  pipelined.batch_max_commands = 16;
  pipelined.max_slots = 1u << 20;
  const FleetRun base = run_fleet(n, serial, commands, /*seed=*/1);
  const FleetRun fast = run_fleet(n, pipelined, commands, /*seed=*/1);

  // Checkpoint overhead: the same pipelined engine with checkpointing
  // disabled — the delta is what certification + truncation cost.
  smr::SmrOptions no_ckpt = pipelined;
  no_ckpt.checkpoint_interval = 0;
  const FleetRun plain = run_fleet(n, no_ckpt, commands, /*seed=*/1);

  // Durability + recovery: an n = 4 fleet whose leader appends every
  // decide to a real fsync'd WAL (checkpoint interval 4 so stable
  // checkpoints actually truncate it), then a fresh replica is rebuilt
  // from that WAL alone and the reconstruction is wall-clock timed.
  const std::uint32_t rec_n = 4;
  const auto wal_dir =
      std::filesystem::temp_directory_path() /
      ("probft-bench-wal-" + std::to_string(::getpid()));
  std::filesystem::remove_all(wal_dir);
  smr::SmrOptions durable_opts = pipelined;
  durable_opts.checkpoint_interval = 4;
  double durable_tput = 0.0;
  double recovery_us = 0.0;
  std::uint64_t recovered_slots = 0;
  std::uint64_t stable_slot = 0;
  std::uint64_t wal_records = 0;
  bool digest_match = false;
  bool completed = false;
  std::string precrash_digest;
  {
    store::Wal wal(store::WalOptions{wal_dir.string(), /*fsync=*/true});
    const FleetRun durable =
        run_fleet(rec_n, durable_opts, commands, /*seed=*/1, &wal);
    wal.sync();
    completed = durable.completed;
    durable_tput = kcmd_per_vsec(durable, commands);
    precrash_digest = durable.digest;
  }
  {
    // A crash-restarted process opens its own Wal: the timed span is the
    // whole cold path — segment scan + snapshot verification + replay.
    // Same deterministic key material run_fleet derives for seed 1.
    const auto suite = crypto::make_sim_suite();
    std::vector<crypto::KeyPair> keys(rec_n + 1);
    std::vector<Bytes> key_table(rec_n + 1);
    for (ReplicaId id = 1; id <= rec_n; ++id) {
      keys[id] = suite->keygen(mix64(1, id));
      key_table[id] = keys[id].public_key;
    }
    smr::SmrConfig cfg;
    cfg.id = 1;
    cfg.n = rec_n;
    cfg.f = 0;
    cfg.pipeline = durable_opts;
    cfg.suite = suite.get();
    cfg.secret_key = keys[1].secret_key;
    cfg.public_keys = crypto::PublicKeyDir(std::move(key_table));
    cfg.sync.base_timeout = 100'000;
    core::ProtocolHost host;
    host.send = [](ReplicaId, std::uint8_t, const Bytes&) {};
    host.broadcast = [](std::uint8_t, const Bytes&) {};
    host.set_timer = [](Duration, std::function<void()>) {};
    host.on_commit = [](std::uint64_t, const Bytes&) {};

    const auto t0 = std::chrono::steady_clock::now();
    store::Wal wal(store::WalOptions{wal_dir.string(), /*fsync=*/true});
    cfg.wal = &wal;
    smr::SmrReplica reborn(std::move(cfg), host);
    recovery_us = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    wal_records = wal.records().size();
    recovered_slots = reborn.recovered_slots();
    stable_slot = reborn.stable_checkpoint();
    digest_match = reborn.log_digest() == precrash_digest;
  }
  std::filesystem::remove_all(wal_dir);

  // Verification-pool sweep (wall-clock, real Ed25519): a smaller
  // workload keeps the recording fleet affordable inside the JSON step.
  const std::uint64_t vp_commands = std::min<std::uint64_t>(commands, 128);
  RecordedTrace vp_trace;
  const auto vp_rows = verify_sweep(n, vp_commands, &vp_trace);
  bool vp_digest_ok = vp_trace.completed;
  for (const auto& row : vp_rows) vp_digest_ok = vp_digest_ok && row.digest_ok;

  const double base_t = kcmd_per_vsec(base, commands);
  const double fast_t = kcmd_per_vsec(fast, commands);
  const double plain_t = kcmd_per_vsec(plain, commands);
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "emit-json: cannot open %s\n", path.c_str());
    return 2;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"bench\": \"smr\",\n"
      "  \"n\": %u,\n"
      "  \"commands\": %llu,\n"
      "  \"throughput\": {\n"
      "    \"serial_kcmd_per_vsec\": %.2f,\n"
      "    \"pipelined_kcmd_per_vsec\": %.2f,\n"
      "    \"speedup_x\": %.2f\n"
      "  },\n"
      "  \"checkpoint\": {\n"
      "    \"interval_slots\": %llu,\n"
      "    \"pipelined_kcmd_per_vsec_without\": %.2f,\n"
      "    \"overhead_pct\": %.1f\n"
      "  },\n"
      "  \"recovery\": {\n"
      "    \"n\": %u,\n"
      "    \"durable_kcmd_per_vsec_fsync_wal\": %.2f,\n"
      "    \"wal_tail_records\": %llu,\n"
      "    \"recovered_slots\": %llu,\n"
      "    \"stable_checkpoint_slot\": %llu,\n"
      "    \"recovery_wall_us\": %.0f,\n"
      "    \"digest_matches_precrash\": %s\n"
      "  },\n"
      "  \"verify_pool\": {\n"
      "    \"suite\": \"ed25519\",\n"
      "    \"n\": %u,\n"
      "    \"commands\": %llu,\n"
      "    \"host_cores\": %u,\n"
      "    \"digests_identical\": %s,\n"
      "    \"rows\": [\n",
      n, static_cast<unsigned long long>(commands), base_t, fast_t,
      base_t > 0 ? fast_t / base_t : 0.0,
      static_cast<unsigned long long>(pipelined.checkpoint_interval),
      plain_t, plain_t > 0 ? (plain_t - fast_t) * 100.0 / plain_t : 0.0,
      rec_n, durable_tput, static_cast<unsigned long long>(wal_records),
      static_cast<unsigned long long>(recovered_slots),
      static_cast<unsigned long long>(stable_slot), recovery_us,
      digest_match ? "true" : "false", n,
      static_cast<unsigned long long>(vp_commands),
      std::thread::hardware_concurrency(), vp_digest_ok ? "true" : "false");
  for (std::size_t i = 0; i < vp_rows.size(); ++i) {
    const auto& row = vp_rows[i];
    std::fprintf(
        out,
        "      {\"threads\": %u, \"kcmd_per_sec\": %.2f, "
        "\"kcmd_per_sec_per_core\": %.2f, \"p50_us\": %.0f, "
        "\"p95_us\": %.0f, \"p99_us\": %.0f}%s\n",
        row.threads, row.kcmd_per_sec, row.kcmd_per_sec_core, row.p50_us,
        row.p95_us, row.p99_us, i + 1 < vp_rows.size() ? "," : "");
  }
  std::fprintf(out,
               "    ]\n"
               "  }\n"
               "}\n");
  std::fclose(out);
  std::printf(
      "emit-json: serial=%.2f pipelined=%.2f (%.1fx) ckpt-overhead=%.1f%% "
      "recovery=%.0fus slots=%llu digest_match=%d -> %s\n",
      base_t, fast_t, base_t > 0 ? fast_t / base_t : 0.0,
      plain_t > 0 ? (plain_t - fast_t) * 100.0 / plain_t : 0.0, recovery_us,
      static_cast<unsigned long long>(recovered_slots), digest_match ? 1 : 0,
      path.c_str());
  if (!base.completed || !fast.completed || !plain.completed || !completed ||
      !digest_match || recovered_slots == 0 || !vp_digest_ok) {
    std::fprintf(stderr, "emit-json: BAD OUTCOME (incomplete run, recovery "
                         "mismatch, or verify-pool digest divergence)\n");
    return 2;
  }
  return 0;
}

void BM_SmrThroughput(benchmark::State& state) {
  const auto window = static_cast<std::uint32_t>(state.range(0));
  const auto batch = static_cast<std::uint32_t>(state.range(1));
  smr::SmrOptions options;
  options.window = window;
  options.batch_max_commands = batch;
  options.max_slots = 1u << 20;
  double kcmd_per_vsec = 0.0;
  for (auto _ : state) {
    const FleetRun run = run_fleet(/*n=*/16, options, /*commands=*/128,
                                   /*seed=*/1);
    if (run.all_done > 0) {
      kcmd_per_vsec = 128.0 * 1e6 / static_cast<double>(run.all_done) / 1e3;
    }
    benchmark::DoNotOptimize(run.all_done);
  }
  state.counters["kcmd_per_vsec"] = kcmd_per_vsec;
}
BENCHMARK(BM_SmrThroughput)
    ->Args({1, 1})
    ->Args({8, 16})
    ->ArgNames({"window", "batch"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t n = 32;
  std::uint64_t commands = 256;
  double smoke_bound_x = 0.0;
  double verify_smoke_x = 0.0;
  std::string emit_json_path;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--n=", 0) == 0) {
      n = static_cast<std::uint32_t>(
          std::strtoul(arg.c_str() + 4, nullptr, 10));
    } else if (arg.rfind("--commands=", 0) == 0) {
      commands = std::strtoull(arg.c_str() + 11, nullptr, 10);
    } else if (arg.rfind("--smoke-bound-x=", 0) == 0) {
      smoke_bound_x = std::strtod(arg.c_str() + 16, nullptr);
    } else if (arg.rfind("--verify-smoke-x=", 0) == 0) {
      verify_smoke_x = std::strtod(arg.c_str() + 17, nullptr);
    } else if (arg.rfind("--emit-json=", 0) == 0) {
      emit_json_path = arg.substr(12);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (smoke_bound_x > 0) return run_smoke(n, commands, smoke_bound_x);
  if (verify_smoke_x > 0) {
    return run_verify_smoke(n, std::min<std::uint64_t>(commands, 128),
                            verify_smoke_x);
  }
  if (!emit_json_path.empty()) return emit_json(emit_json_path, n, commands);

  print_table(n, commands);
  print_verify_sweep(n, std::min<std::uint64_t>(commands, 128));
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
