// Linearizable read fast path (ISSUE 10 tentpole): served operations
// per simulated second as the read ratio grows, against the all-writes
// baseline — the "reads skip the ordered log" claim, measured.
//
// A fleet of SmrReplicas runs on the deterministic simulator in the
// slot-rate-bound regime (window 4, one command per slot — the same
// shape bench_sharding uses, so ordering cost is per-operation, not
// amortized away by batching). The workload is `total` operations at a
// read ratio R: W = total·(1-R) writes from distinct clients preloaded
// at the view-1 leader, and total - W reads of the first written key
// submitted closed-loop at the leader once that key has executed.
// Writes pay the full ordering pipeline; reads are answered through
// SmrReplica::submit_read at the selected consistency — under a held
// lease a linearizable read never touches the ordered log.
//
// Reported per row (ratio × consistency): served operations per virtual
// second, speedup over the all-writes baseline, read latency quantiles,
// and fleet log agreement. The harness also pins the write path: the
// ratio-0 log digest must be bit-identical with reads enabled and
// disabled (lease traffic must never perturb slot contents — batches
// form from the submission queue in arrival order, so any divergence
// means the read plumbing leaked into ordering).
//
// --smoke runs the CI acceptance gate: linearizable reads at ratio 0.99
// must serve >= 5x the all-writes ops/sec with identical logs, zero
// stale reads and a stable write-path digest; exits nonzero otherwise.
//
// --emit-json=PATH writes BENCH_reads.json (the committed read-path
// baseline) instead of the tables.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/client.hpp"
#include "net/network.hpp"
#include "smr/smr_replica.hpp"

namespace {

using namespace probft;

struct ReadRun {
  bool completed = false;
  bool agree = false;      // fleet log digests identical
  TimePoint all_done = 0;  // virtual µs until writes + reads all served
  double wall_ms = 0.0;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t reads_ok = 0;
  std::uint64_t reads_stale = 0;     // executed answer with the wrong value
  std::uint64_t reads_rejected = 0;  // kRejected replies (retried)
  std::uint64_t reads_failed = 0;    // gave up after the retry budget
  std::string digest;                // leader's chained log digest
  std::vector<TimePoint> read_latency;  // submit → answer, virtual µs
};

/// One fleet run at a fixed read ratio. Reads are a closed-loop chain at
/// the leader: each answered read issues the next, so the measured span
/// is the serving cost, not an arrival schedule. A rejected read retries
/// after 10 ms of virtual time (a handful of rejections is normal while
/// the first lease round completes), with a budget so a broken read
/// path terminates the run instead of hanging it.
ReadRun run_read_fleet(std::uint32_t n, std::uint32_t f, double ratio,
                       net::ReadConsistency consistency, std::uint64_t total,
                       std::uint64_t seed, bool serve_reads) {
  net::Simulator sim;
  net::LatencyConfig latency;  // defaults: synchronous, 1–10 ms delays
  net::Network network(sim, n, seed, latency);
  const auto suite = crypto::make_sim_suite();

  std::vector<crypto::KeyPair> keys(n + 1);
  std::vector<Bytes> key_table(n + 1);
  for (ReplicaId id = 1; id <= n; ++id) {
    keys[id] = suite->keygen(mix64(seed, id));
    key_table[id] = keys[id].public_key;
  }
  const crypto::PublicKeyDir public_keys(std::move(key_table));

  ReadRun run;
  run.reads = static_cast<std::uint64_t>(
      ratio * static_cast<double>(total) + 0.5);
  run.writes = total - run.reads;

  smr::SmrOptions options;
  // Slot-rate-bound regime (bench_sharding's): ordering costs one slot
  // per write, so the read path's savings are visible per operation.
  options.window = 4;
  options.batch_max_commands = 1;
  options.max_slots = 1u << 20;
  options.serve_reads = serve_reads;
  // Lease validity must be of the same order as the 100 ms sync timeout
  // (the defaults are wall-clock knobs); see src/sim/scenario.cpp.
  options.lease_duration = 100'000;
  options.lease_skew = 25'000;

  std::vector<std::unique_ptr<smr::SmrReplica>> replicas(n + 1);
  for (ReplicaId id = 1; id <= n; ++id) {
    smr::SmrConfig cfg;
    cfg.id = id;
    cfg.n = n;
    cfg.f = f;
    cfg.pipeline = options;
    cfg.suite = suite.get();
    cfg.secret_key = keys[id].secret_key;
    cfg.public_keys = public_keys;
    cfg.sync.base_timeout = 100'000;
    core::ProtocolHost host;
    host.send = [&network, id](ReplicaId to, std::uint8_t tag,
                               const Bytes& m) {
      network.send(id, to, tag, m);
    };
    host.broadcast = [&network, id](std::uint8_t tag, const Bytes& m) {
      network.broadcast(id, tag, m);
    };
    host.set_timer = [&sim](Duration d, std::function<void()> fn) {
      sim.schedule_after(d, std::move(fn));
    };
    replicas[id] = std::make_unique<smr::SmrReplica>(std::move(cfg), host);
    network.register_handler(
        id, [&replicas, id](ReplicaId from, std::uint8_t tag,
                            const Bytes& m) {
          replicas[id]->on_message(from, tag, m);
        });
  }

  // Distinct-client writes preloaded at the leader (one per slot).
  for (std::uint64_t i = 1; i <= run.writes; ++i) {
    (void)replicas[1]->submit_request(9000 + i, 1,
                                      to_bytes("op-" + std::to_string(i)));
  }
  for (ReplicaId id = 1; id <= n; ++id) replicas[id]->start();

  // The read chain: key and expected value are write 1's payload (a
  // payload with no '=' is both its own ReadView key and value).
  const Bytes read_key = to_bytes("op-1");
  std::uint64_t reads_done = 0;
  std::uint64_t sent_at = 0;
  std::uint32_t attempts = 0;
  constexpr std::uint32_t kMaxAttempts = 32;
  std::function<void()> issue_read;
  std::function<void(const smr::SmrReplica::ReadResult&)> on_answer;
  on_answer = [&](const smr::SmrReplica::ReadResult& r) {
    if (r.status == net::ReplyStatus::kExecuted) {
      if (r.value == read_key) {
        ++run.reads_ok;
        run.read_latency.push_back(sim.now() - sent_at);
      } else {
        ++run.reads_stale;
      }
      ++reads_done;
      issue_read();
      return;
    }
    ++run.reads_rejected;
    if (++attempts >= kMaxAttempts) {
      ++run.reads_failed;
      ++reads_done;
      issue_read();
      return;
    }
    sim.schedule_after(10'000, [&] {
      sent_at = sim.now();
      replicas[1]->submit_read(read_key, consistency, /*min_index=*/1,
                               on_answer);
    });
  };
  issue_read = [&] {
    if (reads_done >= run.reads) return;
    attempts = 0;
    sent_at = sim.now();
    replicas[1]->submit_read(read_key, consistency, /*min_index=*/1,
                             on_answer);
  };

  bool reads_started = run.reads == 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (sim.now() < 600'000'000) {
    if (!reads_started && replicas[1]->executed_commands() >= 1) {
      reads_started = true;
      issue_read();
    }
    bool all = reads_done >= run.reads;
    for (ReplicaId id = 1; all && id <= n; ++id) {
      if (replicas[id]->executed_commands() < run.writes) all = false;
    }
    if (all && reads_started) {
      run.completed = true;
      run.all_done = sim.now();
      break;
    }
    if (!sim.step()) break;
  }
  run.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  run.agree = true;
  for (ReplicaId id = 2; id <= n; ++id) {
    if (replicas[id]->log_digest() != replicas[1]->log_digest()) {
      run.agree = false;
    }
  }
  run.digest = replicas[1]->log_digest();
  return run;
}

double ops_per_vsec(const ReadRun& run, std::uint64_t total) {
  if (run.all_done == 0) return 0.0;
  return static_cast<double>(total) * 1e6 /
         static_cast<double>(run.all_done);
}

TimePoint quantile(std::vector<TimePoint> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const std::size_t idx = std::min(
      values.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(values.size())));
  return values[idx];
}

const char* name_of(net::ReadConsistency mode) {
  switch (mode) {
    case net::ReadConsistency::kLinearizable:
      return "linearizable";
    case net::ReadConsistency::kSequential:
      return "sequential";
    case net::ReadConsistency::kStaleOk:
      return "stale-ok";
  }
  return "?";
}

constexpr double kRatioSweep[] = {0.5, 0.9, 0.99};
constexpr net::ReadConsistency kModes[] = {
    net::ReadConsistency::kLinearizable,
    net::ReadConsistency::kSequential,
    net::ReadConsistency::kStaleOk,
};

std::uint32_t f_for(std::uint32_t n) { return n >= 32 ? 7 : 1; }

void print_table(std::uint32_t n, std::uint64_t total) {
  const std::uint32_t f = f_for(n);
  const ReadRun base =
      run_read_fleet(n, f, 0.0, net::ReadConsistency::kLinearizable, total,
                     /*seed=*/1, /*serve_reads=*/false);
  const ReadRun pin =
      run_read_fleet(n, f, 0.0, net::ReadConsistency::kLinearizable, total,
                     /*seed=*/1, /*serve_reads=*/true);
  const double baseline = ops_per_vsec(base, total);
  std::printf(
      "\n================================================================\n"
      "Read fast path — served operations per simulated second as the\n"
      "read ratio grows (n = %u, f = %u, %llu operations, seed 1;\n"
      "ratio 0 is the all-writes ordered-log baseline)\n"
      "================================================================\n",
      n, f, static_cast<unsigned long long>(total));
  std::printf("%-7s %-14s %-11s %-9s %-10s %-10s %-6s %s\n", "ratio",
              "consistency", "ops/vsec", "speedup", "rd-p50-us", "rd-p99-us",
              "rej", "agree");
  std::printf("%-7.2f %-14s %-11.0f %-9.2f %-10s %-10s %-6s %s\n", 0.0,
              "(writes only)", baseline, 1.0, "-", "-", "-",
              base.completed ? (base.agree ? "yes" : "NO") : "DNF");
  for (const double ratio : kRatioSweep) {
    for (const auto mode : kModes) {
      const ReadRun run = run_read_fleet(n, f, ratio, mode, total,
                                         /*seed=*/1, /*serve_reads=*/true);
      std::printf(
          "%-7.2f %-14s %-11.0f %-9.2f %-10llu %-10llu %-6llu %s\n", ratio,
          name_of(mode), ops_per_vsec(run, total),
          baseline > 0 ? ops_per_vsec(run, total) / baseline : 0.0,
          static_cast<unsigned long long>(quantile(run.read_latency, 0.5)),
          static_cast<unsigned long long>(quantile(run.read_latency, 0.99)),
          static_cast<unsigned long long>(run.reads_rejected),
          run.completed
              ? (run.agree && run.reads_stale == 0 ? "yes" : "NO")
              : "DNF");
    }
  }
  std::printf("\nwrite-path pin (ratio 0): reads on vs off slot logs %s\n",
              base.digest == pin.digest ? "bit-identical" : "DIFFER (BUG)");
}

/// CI acceptance gate: linearizable reads at ratio 0.99 must serve
/// >= bound_x times the all-writes baseline, stale-free, with identical
/// fleet logs and a write path digest-stable under serve_reads.
int run_smoke(std::uint32_t n, std::uint64_t total, double bound_x) {
  const std::uint32_t f = f_for(n);
  const ReadRun base =
      run_read_fleet(n, f, 0.0, net::ReadConsistency::kLinearizable, total,
                     /*seed=*/1, /*serve_reads=*/false);
  const ReadRun pin =
      run_read_fleet(n, f, 0.0, net::ReadConsistency::kLinearizable, total,
                     /*seed=*/1, /*serve_reads=*/true);
  const ReadRun fast =
      run_read_fleet(n, f, 0.99, net::ReadConsistency::kLinearizable, total,
                     /*seed=*/1, /*serve_reads=*/true);
  const double base_t = ops_per_vsec(base, total);
  const double fast_t = ops_per_vsec(fast, total);
  const double speedup = base_t > 0 ? fast_t / base_t : 0.0;
  std::printf("reads smoke: n=%u total=%llu writes=%lluus reads99=%lluus "
              "speedup=%.1fx bound=%.1fx stale=%llu failed=%llu "
              "digest_stable=%d agree=%d/%d/%d\n",
              n, static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(base.all_done),
              static_cast<unsigned long long>(fast.all_done), speedup,
              bound_x, static_cast<unsigned long long>(fast.reads_stale),
              static_cast<unsigned long long>(fast.reads_failed),
              base.digest == pin.digest ? 1 : 0, base.agree ? 1 : 0,
              pin.agree ? 1 : 0, fast.agree ? 1 : 0);
  if (!base.completed || !pin.completed || !fast.completed || !base.agree ||
      !pin.agree || !fast.agree) {
    std::fprintf(stderr, "reads smoke: BAD OUTCOME completed=%d/%d/%d\n",
                 base.completed, pin.completed, fast.completed);
    return 2;
  }
  if (base.digest != pin.digest) {
    std::fprintf(stderr, "reads smoke: serve_reads perturbed the write "
                         "path's slot log\n");
    return 2;
  }
  if (fast.reads_stale != 0 || fast.reads_failed != 0) {
    std::fprintf(stderr, "reads smoke: %llu stale / %llu failed reads\n",
                 static_cast<unsigned long long>(fast.reads_stale),
                 static_cast<unsigned long long>(fast.reads_failed));
    return 2;
  }
  if (speedup < bound_x) {
    std::fprintf(stderr, "reads smoke: speedup %.1fx below %.1fx\n", speedup,
                 bound_x);
    return 1;
  }
  return 0;
}

/// Machine-readable read-path baseline (BENCH_reads.json).
int emit_json(const std::string& path, std::uint64_t total,
              std::uint64_t total_large) {
  struct Fleet {
    std::uint32_t n;
    std::uint64_t ops;
  };
  const Fleet fleets[] = {{4, total}, {32, total_large}};
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "emit-json: cannot open %s\n", path.c_str());
    return 2;
  }
  bool ok = true;
  double gate_x = 0.0;  // n=4 linearizable @ 0.99 over all-writes
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"reads\",\n"
               "  \"fleets\": [\n");
  for (std::size_t fi = 0; fi < 2; ++fi) {
    const auto& fleet = fleets[fi];
    const std::uint32_t f = f_for(fleet.n);
    const ReadRun base = run_read_fleet(fleet.n, f, 0.0,
                                        net::ReadConsistency::kLinearizable,
                                        fleet.ops, 1, /*serve_reads=*/false);
    const ReadRun pin = run_read_fleet(fleet.n, f, 0.0,
                                       net::ReadConsistency::kLinearizable,
                                       fleet.ops, 1, /*serve_reads=*/true);
    const double base_t = ops_per_vsec(base, fleet.ops);
    ok = ok && base.completed && base.agree && pin.completed &&
         base.digest == pin.digest;
    std::fprintf(out,
                 "    {\"n\": %u, \"f\": %u, \"ops\": %llu,\n"
                 "     \"all_writes_ops_per_vsec\": %.0f,\n"
                 "     \"write_digest_stable_under_serve_reads\": %s,\n"
                 "     \"rows\": [\n",
                 fleet.n, f, static_cast<unsigned long long>(fleet.ops),
                 base_t, base.digest == pin.digest ? "true" : "false");
    bool first = true;
    for (const double ratio : kRatioSweep) {
      for (const auto mode : kModes) {
        const ReadRun run = run_read_fleet(fleet.n, f, ratio, mode,
                                           fleet.ops, 1,
                                           /*serve_reads=*/true);
        const double tput = ops_per_vsec(run, fleet.ops);
        const double speedup = base_t > 0 ? tput / base_t : 0.0;
        if (fleet.n == 4 && ratio == 0.99 &&
            mode == net::ReadConsistency::kLinearizable) {
          gate_x = speedup;
        }
        ok = ok && run.completed && run.agree && run.reads_stale == 0 &&
             run.reads_failed == 0;
        std::fprintf(
            out,
            "      %s{\"ratio\": %.2f, \"consistency\": \"%s\", "
            "\"ops_per_vsec\": %.0f, \"speedup_x\": %.2f, "
            "\"writes\": %llu, \"reads\": %llu, \"read_p50_us\": %llu, "
            "\"read_p99_us\": %llu, \"rejected\": %llu, \"stale\": %llu, "
            "\"agree\": %s}\n",
            first ? "" : ",", ratio, name_of(mode), tput, speedup,
            static_cast<unsigned long long>(run.writes),
            static_cast<unsigned long long>(run.reads),
            static_cast<unsigned long long>(quantile(run.read_latency, 0.5)),
            static_cast<unsigned long long>(
                quantile(run.read_latency, 0.99)),
            static_cast<unsigned long long>(run.reads_rejected),
            static_cast<unsigned long long>(run.reads_stale),
            run.agree ? "true" : "false");
        first = false;
      }
    }
    std::fprintf(out, "     ]}%s\n", fi == 0 ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"linearizable_099_over_writes_x\": %.2f,\n"
               "  \"ok\": %s\n"
               "}\n",
               gate_x, ok ? "true" : "false");
  std::fclose(out);
  std::printf("emit-json: linearizable@0.99=%.2fx ok=%d -> %s\n", gate_x,
              ok ? 1 : 0, path.c_str());
  return ok ? 0 : 2;
}

void BM_ReadFleet(benchmark::State& state) {
  const double ratio = static_cast<double>(state.range(0)) / 100.0;
  double tput = 0.0;
  for (auto _ : state) {
    const ReadRun run =
        run_read_fleet(/*n=*/4, /*f=*/1, ratio,
                       net::ReadConsistency::kLinearizable, /*total=*/128,
                       /*seed=*/1, /*serve_reads=*/ratio > 0.0);
    tput = ops_per_vsec(run, 128);
    benchmark::DoNotOptimize(run.all_done);
  }
  state.counters["ops_per_vsec"] = tput;
}
BENCHMARK(BM_ReadFleet)
    ->Arg(0)
    ->Arg(90)
    ->Arg(99)
    ->ArgName("read_pct")
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t n = 4;
  std::uint64_t total = 256;
  std::uint64_t total_large = 128;  // the n = 32 fleet's op count
  double smoke_bound_x = 0.0;
  std::string emit_json_path;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--n=", 0) == 0) {
      n = static_cast<std::uint32_t>(
          std::strtoul(arg.c_str() + 4, nullptr, 10));
    } else if (arg.rfind("--ops=", 0) == 0) {
      total = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("--ops-large=", 0) == 0) {
      total_large = std::strtoull(arg.c_str() + 12, nullptr, 10);
    } else if (arg.rfind("--smoke-bound-x=", 0) == 0) {
      smoke_bound_x = std::strtod(arg.c_str() + 16, nullptr);
    } else if (arg == "--smoke") {
      smoke_bound_x = 5.0;  // the acceptance bar
    } else if (arg.rfind("--emit-json=", 0) == 0) {
      emit_json_path = arg.substr(12);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (smoke_bound_x > 0) return run_smoke(n, total, smoke_bound_x);
  if (!emit_json_path.empty()) {
    return emit_json(emit_json_path, total, total_large);
  }

  print_table(n, total);
  print_table(32, total_large);
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
