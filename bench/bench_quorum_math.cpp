// Supporting micro-benchmarks for the quorum-probability toolkit: these
// kernels are evaluated thousands of times per Figure 5 sweep.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "quorum/prob.hpp"
#include "sim/montecarlo.hpp"

namespace {

using namespace probft;
using namespace probft::bench;

void BM_BinomTail(benchmark::State& state) {
  const auto n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quorum::binom_tail_ge(n, 0.34, n / 5));
  }
}
BENCHMARK(BM_BinomTail)->Arg(100)->Arg(400);

void BM_HypergeomTail(benchmark::State& state) {
  const auto n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        quorum::hypergeom_tail_ge(n, n / 2, n / 3, n / 6));
  }
}
BENCHMARK(BM_HypergeomTail)->Arg(100)->Arg(400);

void BM_TerminationExact(benchmark::State& state) {
  const auto p = paper_params(state.range(0), 0.2, 1.7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quorum::replica_termination_exact(p));
  }
}
BENCHMARK(BM_TerminationExact)->Arg(100)->Arg(300);

void BM_AgreementExact(benchmark::State& state) {
  const auto p = paper_params(state.range(0), 0.2, 1.7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quorum::view_disagreement_exact(p));
  }
}
BENCHMARK(BM_AgreementExact)->Arg(100)->Arg(300);

void BM_McTerminationTrial(benchmark::State& state) {
  const auto p = paper_params(state.range(0), 0.2, 1.7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::mc_termination(p, 10, 1));
  }
}
BENCHMARK(BM_McTerminationTrial)->Arg(100)->Arg(300)->Unit(
    benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
