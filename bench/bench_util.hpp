// Small shared helpers for the figure/table reproduction benches.
//
// Every bench binary prints (a) the paper's figure/table data as aligned
// text rows, and (b) optionally registers google-benchmark timings for the
// underlying kernels. Reproduction output goes to stdout so that
// `for b in build/bench/*; do $b; done` regenerates every figure.
#pragma once

#include <cstdio>

#include "quorum/analysis.hpp"

namespace probft::bench {

inline quorum::Params paper_params(std::int64_t n, double f_ratio, double o,
                                   double l = 2.0) {
  quorum::Params p;
  p.n = n;
  p.f = static_cast<std::int64_t>(static_cast<double>(n) * f_ratio);
  p.o = o;
  p.l = l;
  return p;
}

inline void print_header(const char* figure, const char* description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("================================================================\n");
}

}  // namespace probft::bench
