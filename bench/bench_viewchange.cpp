// View-change justification wall (ROADMAP perf item): a view ≥ 2 proposal
// carries a deterministic quorum of NewLeader messages, each embedding a
// q = ⌈l√n⌉ prepared certificate, and every replica re-verifies the lot —
// O(n·√n) signatures + VRF proofs per proposal, O(n²√n) across the
// cluster. This bench drives a REAL view-2 scenario (view 1 prepares but
// every Commit is held until the first timeout, so all replicas enter
// view 2 carrying full prepared certificates) and reports wall-clock time
// with the verification fast path (content-addressed verdict cache +
// batched signature verification + wire-level cert dedup) against the
// naive re-verify-everything slow path, asserting the two runs produce
// bit-identical per-seed decisions.
//
// Default table covers n = 100 and n = 200 (CI-friendly); pass --full for
// the n = 500 / l = 1.5 headline row. --smoke-n=N --smoke-bound-ms=M runs
// one fast-path scenario and exits nonzero if it misses the bound or the
// outcome is wrong (the nightly workflow's justification-path regression
// gate).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/replica.hpp"
#include "sim/cluster.hpp"

namespace {

using namespace probft;

struct View2Outcome {
  double wall_ms = 0.0;
  bool completed = false;
  bool agreement = false;
  View min_decided_view = 0;
  std::uint64_t propose_bytes = 0;
  std::vector<sim::DecisionRecord> decisions;
};

/// One full simulated run that is forced through the heavy view-change
/// path: every replica prepares in view 1, nobody decides there.
View2Outcome run_view2(std::uint32_t n, double l, bool fast_verify,
                       std::uint64_t seed) {
  sim::ClusterConfig cfg;
  cfg.protocol = sim::Protocol::kProbft;
  cfg.n = n;
  cfg.f = n / 10;
  cfg.o = 1.7;
  cfg.l = l;
  cfg.seed = seed;
  cfg.fast_verify = fast_verify;
  cfg.sync.base_timeout = 200'000;  // view 1 has ample time to prepare

  sim::Cluster cluster(cfg);
  // Hold every Commit until the first view timeout: view 1 reaches
  // prepared state everywhere but cannot decide, so each NewLeaderMsg for
  // view 2 carries a full q-certificate — the worst-case justification.
  net::Simulator& sim = cluster.simulator();
  const TimePoint hold_until = cfg.sync.base_timeout;
  cluster.network().set_filter(
      [&sim, hold_until](ReplicaId, ReplicaId, std::uint8_t tag) {
        return tag == core::tag_byte(core::MsgTag::kCommit) &&
               sim.now() < hold_until;
      });
  cluster.start();

  View2Outcome out;
  const auto t0 = std::chrono::steady_clock::now();
  out.completed = cluster.run_to_completion(/*deadline=*/600'000'000);
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  out.agreement = cluster.agreement_ok();
  out.decisions = cluster.decisions();
  for (const auto& d : out.decisions) {
    if (out.min_decided_view == 0 || d.view < out.min_decided_view) {
      out.min_decided_view = d.view;
    }
  }
  out.propose_bytes =
      cluster.network().stats().bytes_for(core::tag_byte(core::MsgTag::kPropose));
  return out;
}

bool same_decisions(const std::vector<sim::DecisionRecord>& a,
                    const std::vector<sim::DecisionRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].replica != b[i].replica || a[i].view != b[i].view ||
        a[i].value != b[i].value || a[i].at != b[i].at) {
      return false;
    }
  }
  return true;
}

void print_table(bool full) {
  std::printf(
      "\n================================================================\n"
      "View-change justification wall — view-2 wall clock vs n (l = 1.5)\n"
      "================================================================\n");
  std::printf("%-6s %-12s %-12s %-9s %-10s %-11s %s\n", "n", "slow(ms)",
              "fast(ms)", "speedup", "identical", "view2-only",
              "propose-KiB(fast)");
  std::vector<std::uint32_t> sizes = {100, 200};
  if (full) sizes.push_back(500);
  for (const std::uint32_t n : sizes) {
    const auto slow = run_view2(n, 1.5, /*fast_verify=*/false, /*seed=*/1);
    const auto fast = run_view2(n, 1.5, /*fast_verify=*/true, /*seed=*/1);
    const bool sane = slow.completed && fast.completed && slow.agreement &&
                      fast.agreement;
    std::printf("%-6u %-12.1f %-12.1f %-9.2f %-10s %-11s %.1f\n", n,
                slow.wall_ms, fast.wall_ms,
                fast.wall_ms > 0 ? slow.wall_ms / fast.wall_ms : 0.0,
                same_decisions(slow.decisions, fast.decisions) ? "yes"
                                                               : "NO",
                sane && fast.min_decided_view >= 2 ? "yes" : "NO",
                static_cast<double>(fast.propose_bytes) / 1024.0);
  }
  std::printf(
      "\nNote: the slow column disables only the verification fast path\n"
      "(verdict cache + batch verify); it still benefits from this PR's\n"
      "wire-level cert dedup, shared-pointer decode and digest-based\n"
      "signing bytes, which cannot be toggled per-run (the wire format is\n"
      "cluster-wide). The full pre-PR path (flat signing bytes, un-pooled\n"
      "justifications, per-reference re-verification) measured 72.3 s for\n"
      "the n = 500 row's scenario on the same single-core dev box — ~7x\n"
      "the fast column (ROADMAP perf item: >= 5x).\n");
  if (!full) {
    std::printf("(--full adds the n = 500 headline row.)\n");
  }
}

/// Nightly regression gate: one fast-path run under a wall-clock bound.
int run_smoke(std::uint32_t n, double bound_ms) {
  const auto r = run_view2(n, 1.5, /*fast_verify=*/true, /*seed=*/1);
  std::printf(
      "viewchange smoke: n=%u wall=%.1fms bound=%.0fms completed=%d "
      "agreement=%d min_decided_view=%llu\n",
      n, r.wall_ms, bound_ms, r.completed ? 1 : 0, r.agreement ? 1 : 0,
      static_cast<unsigned long long>(r.min_decided_view));
  if (!r.completed || !r.agreement || r.min_decided_view < 2) {
    std::fprintf(stderr, "viewchange smoke: BAD OUTCOME\n");
    return 2;
  }
  if (r.wall_ms > bound_ms) {
    std::fprintf(stderr, "viewchange smoke: wall %.1fms exceeds %.0fms\n",
                 r.wall_ms, bound_ms);
    return 1;
  }
  return 0;
}

void BM_View2(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const bool fast = state.range(1) != 0;
  for (auto _ : state) {
    auto r = run_view2(n, 1.5, fast, /*seed=*/1);
    benchmark::DoNotOptimize(r.wall_ms);
  }
}
BENCHMARK(BM_View2)
    ->Args({100, 0})
    ->Args({100, 1})
    ->ArgNames({"n", "fast"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool full = false;
  std::uint32_t smoke_n = 0;
  double smoke_bound_ms = 60'000.0;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") {
      full = true;
    } else if (arg.rfind("--smoke-n=", 0) == 0) {
      smoke_n = static_cast<std::uint32_t>(
          std::strtoul(arg.c_str() + 10, nullptr, 10));
    } else if (arg.rfind("--smoke-bound-ms=", 0) == 0) {
      smoke_bound_ms = std::strtod(arg.c_str() + 17, nullptr);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (smoke_n > 0) return run_smoke(smoke_n, smoke_bound_ms);

  print_table(full);
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
