// Ablation: the two knobs of ProBFT's probabilistic quorums.
//
//   o — how much larger the multicast sample is than the quorum (s = o·q).
//       The paper (§3.1): "Bigger values of o increase the probability of
//       forming a probabilistic quorum ... albeit generating more
//       messages."
//   l — the quorum size factor (q = l·√n). The paper fixes l = 2 in the
//       evaluation; this sweep shows why: smaller l saves messages but
//       weakens both termination and agreement; larger l costs messages
//       with diminishing returns.
//
// For each (o, l) point at n = 100, f = 20 we print: quorum sizes, the
// message cost, the exact termination probability, the Monte-Carlo
// termination rate, and the cross-view safety bound (Thm 8) — the full
// trade-off triangle behind the paper's parameter choice.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/montecarlo.hpp"

namespace {

using namespace probft;
using namespace probft::bench;

constexpr int kTrials = 3000;

void print_o_sweep() {
  print_header("Ablation o",
               "sample factor sweep at n = 100, f = 20, l = 2 (q = 20)");
  std::printf("%-6s %-4s %-10s %-14s %-12s %-16s\n", "o", "s", "messages",
              "P(term) exact", "P(term) MC", "x-view bound");
  for (double o : {1.1, 1.3, 1.5, 1.6, 1.7, 1.8, 2.0, 2.5}) {
    const auto p = paper_params(100, 0.2, o);
    const auto mc = sim::mc_termination(
        p, kTrials, 100 + static_cast<std::uint64_t>(o * 10));
    std::printf("%-6.1f %-4lld %-10.0f %-14.6f %-12.6f %-16.6f\n", o,
                static_cast<long long>(p.s()), quorum::messages_probft(p),
                quorum::replica_termination_exact(p), mc.per_replica_rate,
                quorum::cross_view_violation_bound(p));
  }
  std::printf(
      "\nReading: larger o buys termination probability with linearly more\n"
      "messages, while loosening the cross-view safety bound (delta in\n"
      "Thm 8 shrinks as o grows) — exactly the trade-off of paper §3.1.\n");
}

void print_l_sweep() {
  print_header("Ablation l",
               "quorum factor sweep at n = 100, f = 20, o = 1.7");
  std::printf("%-6s %-4s %-4s %-10s %-14s %-12s %-14s\n", "l", "q", "s",
              "messages", "P(term) exact", "P(term) MC", "P(viol) exact");
  for (double l : {1.0, 1.5, 2.0, 2.5, 3.0}) {
    auto p = paper_params(100, 0.2, 1.7, l);
    const auto mc = sim::mc_termination(
        p, kTrials, 200 + static_cast<std::uint64_t>(l * 10));
    std::printf("%-6.1f %-4lld %-4lld %-10.0f %-14.6f %-12.6f %-14.3e\n", l,
                static_cast<long long>(p.q()), static_cast<long long>(p.s()),
                quorum::messages_probft(p),
                quorum::replica_termination_exact(p), mc.per_replica_rate,
                quorum::view_disagreement_exact(p));
  }
  std::printf(
      "\nReading: l controls the safety margin. l = 1 (q = 10) is cheap but\n"
      "its disagreement tail grows; l = 3 (q = 30) costs 1.5x the messages\n"
      "of l = 2 for little extra protection — supporting the paper's l = 2.\n");
}

void BM_AblationPoint(benchmark::State& state) {
  const auto p = paper_params(100, 0.2, 1.7,
                              static_cast<double>(state.range(0)) / 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::mc_termination(p, 100, 1));
  }
}
BENCHMARK(BM_AblationPoint)->Arg(15)->Arg(20)->Arg(25)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_o_sweep();
  print_l_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
