// Theorem 8 / Lemma 6: cross-view safety. After a value val is decided by
// some correct replica, a conflicting proposal can only be justified in a
// later view if val was prepared by "too few" replicas — and deciding with
// few preparers is itself improbable. This bench prints, for n = 100:
//
//   P(a replica decides | exactly r replicas prepared val)
//
// as r sweeps from q to n-f, with the Monte-Carlo estimate and the paper's
// Theorem 8 bound at the critical point r = (n+f)/2.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/montecarlo.hpp"

namespace {

using namespace probft;
using namespace probft::bench;

void print_table() {
  print_header("Theorem 8 / Lemma 6",
               "P(decide | r replicas prepared), n = 100, f = 20, q = 20");
  std::printf("%-6s", "r");
  for (double o : {1.6, 1.7, 1.8}) {
    std::printf(" exact(o=%.1f) mc(o=%.1f)  ", o, o);
  }
  std::printf("\n");
  for (std::int64_t r : {20L, 30L, 40L, 50L, 60L, 70L, 80L}) {
    std::printf("%-6lld", static_cast<long long>(r));
    for (double o : {1.6, 1.7, 1.8}) {
      const auto p = paper_params(100, 0.2, o);
      const double exact = quorum::decide_with_r_prepared_exact(p, r);
      const double mc = sim::mc_quorum_with_r_senders(
          p, r, 3000, 500 + static_cast<std::uint64_t>(r));
      std::printf(" %-12.6f %-11.6f", exact, mc);
    }
    std::printf("\n");
  }
  std::printf("\nTheorem 8 ingredients at the critical point r = (n+f)/2 = 60:\n");
  for (double o : {1.2, 1.4, 1.6, 1.7, 1.8}) {
    const auto p = paper_params(100, 0.2, o);
    std::printf(
        "  o=%.1f: P(decide with 60 preparers) exact=%.4f, Thm8 bound on a\n"
        "        conflicting later proposal = %.4f%s\n",
        o, quorum::decide_with_r_prepared_exact(p, 60),
        quorum::cross_view_violation_bound(p),
        quorum::cross_view_violation_bound(p) >= 1.0 ? " (vacuous)" : "");
  }
  std::printf(
      "\nReading: deciding a value that fewer than a deterministic-quorum's\n"
      "worth of replicas prepared requires an unlikely sampling accident;\n"
      "Theorem 8's Chernoff bound is meaningful for small o and goes vacuous\n"
      "as o -> 2n/(n+f) (delta <= 0), where the exact column still shows the\n"
      "real risk profile.\n");
}

void BM_CrossViewExact(benchmark::State& state) {
  const auto p = paper_params(100, 0.2, 1.7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        quorum::decide_with_r_prepared_exact(p, state.range(0)));
  }
}
BENCHMARK(BM_CrossViewExact)->Arg(40)->Arg(60);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
