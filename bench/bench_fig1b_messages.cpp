// Figure 1b: number of exchanged messages vs system size n for PBFT,
// HotStuff, and ProBFT with o in {1.6, 1.7, 1.8} (q = 2*sqrt(n)).
//
// Columns:
//   - analytic counts from the closed-form models (quorum/analysis.hpp);
//   - for sizes where full simulation is cheap, measured counts from the
//     simulated protocols (normal case, correct leader).
// The section-5 claim that ProBFT (o = 1.7) uses only a fraction of PBFT's
// messages is printed as a ratio column.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/cluster.hpp"

namespace {

using namespace probft;
using namespace probft::bench;

std::uint64_t measured_messages(sim::Protocol protocol, std::uint32_t n,
                                double o) {
  sim::ClusterConfig cfg;
  cfg.protocol = protocol;
  cfg.n = n;
  cfg.f = 0;
  cfg.o = o;
  cfg.seed = 11;
  sim::Cluster cluster(cfg);
  cluster.start();
  cluster.run_to_completion();
  return cluster.network().stats().sends;
}

void print_analytic() {
  print_header("Figure 1b",
               "#exchanged messages in the normal case (analytic model)");
  std::printf("%-6s %-10s %-10s %-12s %-12s %-12s %-14s\n", "n", "PBFT",
              "HotStuff", "ProBFT 1.6", "ProBFT 1.7", "ProBFT 1.8",
              "ratio(1.7/PBFT)");
  for (std::int64_t n = 100; n <= 400; n += 50) {
    const double pbft = quorum::messages_pbft(n);
    const double hotstuff = quorum::messages_hotstuff(n);
    const double p16 = quorum::messages_probft(paper_params(n, 0.2, 1.6));
    const double p17 = quorum::messages_probft(paper_params(n, 0.2, 1.7));
    const double p18 = quorum::messages_probft(paper_params(n, 0.2, 1.8));
    std::printf("%-6lld %-10.0f %-10.0f %-12.0f %-12.0f %-12.0f %-14.3f\n",
                static_cast<long long>(n), pbft, hotstuff, p16, p17, p18,
                p17 / pbft);
  }
  std::printf(
      "\nShape check (paper): PBFT ~ 2n^2 (3.2e5 at n=400), ProBFT ~ 4o n^1.5,"
      "\nHotStuff ~ 8n; ProBFT(1.7) uses ~17-35%% of PBFT over this range.\n");
}

void print_measured() {
  print_header("Figure 1b (measured)",
               "#messages counted on the simulated wire, normal case");
  std::printf("%-6s %-12s %-12s %-14s %-20s\n", "n", "PBFT", "HotStuff",
              "ProBFT(1.7)", "ratio ProBFT/PBFT");
  for (std::uint32_t n : {50U, 100U, 150U, 200U}) {
    const auto pbft = measured_messages(sim::Protocol::kPbft, n, 1.7);
    const auto hotstuff = measured_messages(sim::Protocol::kHotStuff, n, 1.7);
    const auto probft = measured_messages(sim::Protocol::kProbft, n, 1.7);
    std::printf("%-6u %-12llu %-12llu %-14llu %-20.3f\n", n,
                static_cast<unsigned long long>(pbft),
                static_cast<unsigned long long>(hotstuff),
                static_cast<unsigned long long>(probft),
                static_cast<double>(probft) / static_cast<double>(pbft));
  }
}

void BM_MessageCountModel(benchmark::State& state) {
  const auto n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        quorum::messages_probft(paper_params(n, 0.2, 1.7)));
  }
}
BENCHMARK(BM_MessageCountModel)->Arg(100)->Arg(400);

void BM_SimulatedProbftRun(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        measured_messages(sim::Protocol::kProbft, n, 1.7));
  }
}
BENCHMARK(BM_SimulatedProbftRun)->Arg(50)->Arg(100)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_analytic();
  print_measured();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
