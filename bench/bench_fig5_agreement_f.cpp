// Figure 5 (bottom-left): probability of ensuring agreement vs f/n at
// n = 100, faulty leaders in every view, q = 2*sqrt(n), o in {1.6,1.7,1.8}.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/montecarlo.hpp"

namespace {

using namespace probft;
using namespace probft::bench;

constexpr int kTrials = 4000;

void print_figure() {
  print_header("Figure 5 bottom-left",
               "P(agreement) vs f/n under the optimal-split attack, n = 100");
  std::printf("%-6s", "f/n");
  for (double o : {1.6, 1.7, 1.8}) {
    std::printf(" Pviol(o=%.1f) mc_viol(o=%.1f) mc_viol_qOnly(o=%.1f)", o, o,
                o);
  }
  std::printf("\n");
  for (double f_ratio : {0.10, 0.15, 0.20, 0.25, 0.30}) {
    std::printf("%-6.2f", f_ratio);
    for (double o : {1.6, 1.7, 1.8}) {
      const auto p = paper_params(100, f_ratio, o);
      const auto mc = sim::mc_agreement_optimal_split(
          p, kTrials,
          3000 + static_cast<std::uint64_t>(f_ratio * 100));
      std::printf(" %-12.3e %-14.6f %-21.6f",
                  quorum::view_disagreement_exact(p), mc.violation_rate,
                  mc.violation_rate_quorum_only);
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check (paper): P(agreement) = 1 - Pviol decreases as f/n\n"
      "grows toward 1/3 but stays in the paper's [0.999, 1] band. The\n"
      "quorum-only column shows why the blocking rule is load-bearing.\n");
}

void BM_McAgreementVsF(benchmark::State& state) {
  const auto p = paper_params(
      100, static_cast<double>(state.range(0)) / 100.0, 1.7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::mc_agreement_optimal_split(p, 200, 9));
  }
}
BENCHMARK(BM_McAgreementVsF)->Arg(10)->Arg(30)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
