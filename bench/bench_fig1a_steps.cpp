// Figure 1a: message pattern and number of communication steps in the
// normal case of PBFT, ProBFT, and HotStuff.
//
// Reproduced two ways:
//   1. analytic step counts from the protocol structure;
//   2. measured from the full simulated protocols: the number of
//      network hops on the critical path from the leader's Propose to the
//      last correct replica's decision (each phase adds one hop because
//      every message type is sent exactly once per phase).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/cluster.hpp"

namespace {

using namespace probft;
using namespace probft::bench;

/// Measures good-case latency in communication steps: with every network
/// hop taking exactly 1 ms, the time of the last decision equals the number
/// of sequential message exchanges on the critical path.
int measured_steps(sim::Protocol protocol, std::uint32_t n) {
  sim::ClusterConfig cfg;
  cfg.protocol = protocol;
  cfg.n = n;
  cfg.f = 0;
  cfg.seed = 7;
  cfg.latency.min_delay = 1'000;
  cfg.latency.max_delay_post = 1'000;  // constant 1 ms per hop
  sim::Cluster cluster(cfg);
  cluster.start();
  if (!cluster.run_to_completion()) return -1;
  TimePoint last = 0;
  for (const auto& d : cluster.decisions()) last = std::max(last, d.at);
  return static_cast<int>(last / 1'000);
}

void print_figure() {
  print_header("Figure 1a",
               "communication steps in the normal case (good-case latency)");
  std::printf("%-10s %-22s %-28s\n", "protocol", "analytic steps",
              "measured steps (1ms/hop sim)");
  std::printf("%-10s %-22d %-28d\n", "PBFT", quorum::steps_pbft(),
              measured_steps(sim::Protocol::kPbft, 10));
  std::printf("%-10s %-22d %-28d\n", "ProBFT", quorum::steps_probft(),
              measured_steps(sim::Protocol::kProbft, 16));
  std::printf("%-10s %-22d %-28d\n", "HotStuff", quorum::steps_hotstuff(),
              measured_steps(sim::Protocol::kHotStuff, 10));
  std::printf(
      "\nPattern (paper Fig. 1a): PBFT/ProBFT: Propose -> Prepare -> Commit "
      "(3 steps);\nHotStuff: NewView -> Propose -> Vote -> QC x3 phases "
      "(7+ steps).\n");
}

void BM_FullConsensusRun(benchmark::State& state) {
  const auto protocol = static_cast<sim::Protocol>(state.range(0));
  const auto n = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    sim::ClusterConfig cfg;
    cfg.protocol = protocol;
    cfg.n = n;
    cfg.f = 0;
    cfg.seed = 7;
    sim::Cluster cluster(cfg);
    cluster.start();
    benchmark::DoNotOptimize(cluster.run_to_completion());
  }
}
BENCHMARK(BM_FullConsensusRun)
    ->Args({static_cast<long>(sim::Protocol::kProbft), 16})
    ->Args({static_cast<long>(sim::Protocol::kPbft), 16})
    ->Args({static_cast<long>(sim::Protocol::kHotStuff), 16})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
