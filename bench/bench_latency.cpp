// Good-case end-to-end latency distribution (supporting experiment for
// Figure 1a): decision-time statistics across correct replicas on a
// randomized-latency network (1-8 ms per hop). ProBFT should track PBFT
// (both 3-step protocols; ProBFT waits for the q-th fastest of ~s inbound
// messages per phase) while HotStuff pays its extra phases.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "bench_util.hpp"
#include "sim/cluster.hpp"

namespace {

using namespace probft;
using namespace probft::bench;

struct LatencyStats {
  double min_ms = 0, median_ms = 0, max_ms = 0;
  bool complete = false;
};

LatencyStats run(sim::Protocol protocol, std::uint32_t n,
                 std::uint64_t seed) {
  sim::ClusterConfig cfg;
  cfg.protocol = protocol;
  cfg.n = n;
  cfg.f = 0;
  cfg.seed = seed;
  cfg.latency.min_delay = 1'000;
  cfg.latency.max_delay_post = 8'000;
  sim::Cluster cluster(cfg);
  cluster.start();
  LatencyStats out;
  out.complete = cluster.run_to_completion();
  std::vector<TimePoint> times;
  for (const auto& d : cluster.decisions()) times.push_back(d.at);
  if (times.empty()) return out;
  std::sort(times.begin(), times.end());
  out.min_ms = static_cast<double>(times.front()) / 1000.0;
  out.median_ms = static_cast<double>(times[times.size() / 2]) / 1000.0;
  out.max_ms = static_cast<double>(times.back()) / 1000.0;
  return out;
}

void print_table() {
  print_header("Latency (supporting Fig. 1a)",
               "decision time across replicas, 1-8 ms per hop, honest runs");
  std::printf("%-6s %-10s %-10s %-12s %-10s\n", "n", "protocol", "min ms",
              "median ms", "max ms");
  for (std::uint32_t n : {16U, 50U, 100U}) {
    for (auto [protocol, name] :
         {std::pair{sim::Protocol::kProbft, "ProBFT"},
          std::pair{sim::Protocol::kPbft, "PBFT"},
          std::pair{sim::Protocol::kHotStuff, "HotStuff"}}) {
      const auto stats = run(protocol, n, 31);
      std::printf("%-6u %-10s %-10.2f %-12.2f %-10.2f%s\n", n, name,
                  stats.min_ms, stats.median_ms, stats.max_ms,
                  stats.complete ? "" : "  (incomplete)");
    }
  }
  std::printf(
      "\nReading: ProBFT's latency is in PBFT's ballpark (3 communication\n"
      "steps; the probabilistic quorum waits for the q-th of ~s inbound\n"
      "messages instead of the quorum-th of n). HotStuff's extra phases\n"
      "roughly double the end-to-end time.\n");
}

void BM_DecisionLatency(benchmark::State& state) {
  const auto protocol = static_cast<sim::Protocol>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(protocol, 50, seed++));
  }
}
BENCHMARK(BM_DecisionLatency)
    ->Arg(static_cast<long>(sim::Protocol::kProbft))
    ->Arg(static_cast<long>(sim::Protocol::kPbft))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
