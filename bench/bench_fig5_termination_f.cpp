// Figure 5 (bottom-right): probability of terminating in a view vs f/n at
// n = 100, correct leader after GST, q = 2*sqrt(n), o in {1.6, 1.7, 1.8}.
//
// The paper's panel shows a sharp drop toward ~0.25 near f/n = 0.3; that
// value matches the Chernoff-style bound, while the exact model stays
// higher — both are printed.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/montecarlo.hpp"

namespace {

using namespace probft;
using namespace probft::bench;

constexpr int kTrials = 4000;

void print_figure() {
  print_header(
      "Figure 5 bottom-right",
      "P(termination in view) vs f/n, n = 100, correct leader after GST");
  std::printf("%-6s", "f/n");
  for (double o : {1.6, 1.7, 1.8}) {
    std::printf(" exact(o=%.1f) mc(o=%.1f)  bound(o=%.1f)", o, o, o);
  }
  std::printf("\n");
  for (double f_ratio : {0.10, 0.15, 0.20, 0.25, 0.30}) {
    std::printf("%-6.2f", f_ratio);
    for (double o : {1.6, 1.7, 1.8}) {
      const auto p = paper_params(100, f_ratio, o);
      const auto mc = sim::mc_termination(
          p, kTrials,
          4000 + static_cast<std::uint64_t>(f_ratio * 100));
      // Corollary 2's quorum-formation bound drives the paper's curve.
      std::printf(" %-12.6f %-11.6f %-12.6f",
                  quorum::replica_termination_exact(p), mc.per_replica_rate,
                  quorum::quorum_formation_bound(p));
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check (paper): termination probability falls as f/n grows;\n"
      "the bound column reaches ~0.26 at f/n = 0.3, o = 1.7 — matching the\n"
      "0.25 tick on the paper's y-axis.\n");
}

void BM_McTerminationVsF(benchmark::State& state) {
  const auto p = paper_params(
      100, static_cast<double>(state.range(0)) / 100.0, 1.7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::mc_termination(p, 200, 9));
  }
}
BENCHMARK(BM_McTerminationVsF)->Arg(10)->Arg(30)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
