// Figure 5 (top-right): probability of terminating in a view (after GST,
// correct leader) vs n, f/n = 0.2, q = 2*sqrt(n), o in {1.6, 1.7, 1.8}.
//
// Columns per o:
//   exact — per-replica decision probability from the binomial model
//           (prepare quorum x commit quorum);
//   mc    — Monte-Carlo (sampling level) per-replica decision rate.
// The paper's Lemma 4 Chernoff bound is printed where non-vacuous.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/montecarlo.hpp"

namespace {

using namespace probft;
using namespace probft::bench;

constexpr int kTrials = 4000;

void print_figure() {
  print_header(
      "Figure 5 top-right",
      "P(termination in view) vs n, correct leader after GST, f/n = 0.2");
  std::printf("%-6s", "n");
  for (double o : {1.6, 1.7, 1.8}) {
    std::printf(" exact(o=%.1f) mc(o=%.1f)  mcAll(o=%.1f)", o, o, o);
  }
  std::printf("\n");
  for (std::int64_t n = 100; n <= 300; n += 50) {
    std::printf("%-6lld", static_cast<long long>(n));
    for (double o : {1.6, 1.7, 1.8}) {
      const auto p = paper_params(n, 0.2, o);
      const auto mc = sim::mc_termination(
          p, kTrials, 2000 + static_cast<std::uint64_t>(n));
      std::printf(" %-12.6f %-11.6f %-12.6f",
                  quorum::replica_termination_exact(p), mc.per_replica_rate,
                  mc.all_rate);
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check (paper): probability of deciding increases with n and\n"
      "with o. `exact`/`mc` are per-replica (Lemma 4's event); `mcAll` is\n"
      "Theorem 3's event (EVERY correct replica decides in the view).\n");
}

void BM_McTermination(benchmark::State& state) {
  const auto p = paper_params(state.range(0), 0.2, 1.7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::mc_termination(p, 200, 9));
  }
}
BENCHMARK(BM_McTermination)->Arg(100)->Arg(300)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
