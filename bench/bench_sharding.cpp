// Sharded SMR scaling (ISSUE 8 tentpole): aggregate committed commands
// per simulated second as the shard count grows, on a fixed fleet.
//
// A fleet of n probft nodes each runs a shard::ShardedSmr (S consensus
// groups multiplexed over one simulated network connection per node).
// The workload — `commands` single-command requests from distinct
// clients — is submitted at replica 1, whose placement layer routes each
// payload to its owning group and forwards it to that group's view-1
// leader. One group serializes everything through a single slot window;
// S groups run S windows with round-robin leaders, so aggregate
// throughput should scale close to S until batching absorbs the load
// (batch_max_commands = 1 keeps slot rate, not batch capacity, the
// bottleneck — the regime the paper's scalability argument addresses).
//
// Reported per row: aggregate kcmd per virtual second, speedup over the
// S = 1 baseline, and per-shard log agreement across the fleet. A
// second table drives cross-shard transactions (shard::DtxCoordinator,
// one mined key per shard so every group participates) and reports
// commit-latency quantiles in virtual time.
//
// --smoke runs the CI acceptance gate: S = 4 aggregate throughput must
// clear 2.5x the S = 1 baseline with per-shard digest agreement and
// every cross-shard transaction committed; exits nonzero otherwise.
//
// --emit-json=PATH writes BENCH_sharding.json (the committed scaling
// baseline) instead of the tables.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "shard/dtx.hpp"
#include "shard/sharded_smr.hpp"

namespace {

using namespace probft;

struct ShardedRun {
  bool completed = false;
  bool agree = false;       // per-shard digests equal across the fleet
  TimePoint all_done = 0;   // virtual µs until every node executed all
  double wall_ms = 0.0;
  std::uint64_t slots = 0;  // aggregate committed slots at replica 1
  std::uint64_t dtx_committed = 0;
  std::uint64_t dtx_aborted = 0;
  std::vector<TimePoint> dtx_latency;  // per-tx submit → complete, virtual µs
};

/// One fleet run: n ShardedSmr nodes, `commands` routed client requests
/// (one client per command, like the scenario harness, so per-group
/// dedup can never absorb reordered forwards), plus `dtx_count`
/// cross-shard transactions submitted at replica 1 once the groups are
/// live. Completion = every node executed every entry.
ShardedRun run_sharded_fleet(std::uint32_t n, std::uint32_t shards,
                             smr::SmrOptions options, std::uint64_t commands,
                             std::uint64_t dtx_count, std::uint64_t seed) {
  net::Simulator sim;
  net::LatencyConfig latency;  // defaults: synchronous, 1–10 ms delays
  net::Network network(sim, n, seed, latency);
  const auto suite = crypto::make_sim_suite();

  std::vector<crypto::KeyPair> keys(n + 1);
  std::vector<Bytes> key_table(n + 1);
  for (ReplicaId id = 1; id <= n; ++id) {
    keys[id] = suite->keygen(mix64(seed, id));
    key_table[id] = keys[id].public_key;
  }
  const crypto::PublicKeyDir public_keys(std::move(key_table));

  ShardedRun run;
  std::vector<std::unique_ptr<shard::ShardedSmr>> nodes(n + 1);
  std::vector<std::unique_ptr<shard::DtxCoordinator>> dtx(n + 1);
  for (ReplicaId id = 1; id <= n; ++id) {
    shard::ShardedSmrConfig cfg;
    cfg.base.id = id;
    cfg.base.n = n;
    cfg.base.f = 0;
    cfg.base.pipeline = options;
    cfg.base.suite = suite.get();
    cfg.base.secret_key = keys[id].secret_key;
    cfg.base.public_keys = public_keys;
    cfg.base.sync.base_timeout = 100'000;
    cfg.map.shard_count = shards;
    cfg.on_execute = [&dtx, id](shard::ShardId s,
                                const smr::ExecutedCommand& cmd) {
      if (dtx[id]) dtx[id]->on_execute(s, cmd);
    };
    core::ProtocolHost host;
    host.send = [&network, id](ReplicaId to, std::uint8_t tag,
                               const Bytes& m) {
      network.send(id, to, tag, m);
    };
    host.broadcast = [&network, id](std::uint8_t tag, const Bytes& m) {
      network.broadcast(id, tag, m);
    };
    host.set_timer = [&sim](Duration d, std::function<void()> fn) {
      sim.schedule_after(d, std::move(fn));
    };
    nodes[id] = std::make_unique<shard::ShardedSmr>(std::move(cfg), host);
    dtx[id] = std::make_unique<shard::DtxCoordinator>(
        *nodes[id], [&sim](Duration d, std::function<void()> fn) {
          sim.schedule_after(d, std::move(fn));
        });
    network.register_handler(
        id, [&nodes, id](ReplicaId from, std::uint8_t tag, const Bytes& m) {
          nodes[id]->on_message(from, tag, m);
        });
  }

  // Workload: distinct clients, routed by payload hash at replica 1.
  for (std::uint64_t i = 1; i <= commands; ++i) {
    (void)nodes[1]->submit_request(9000 + i, 1,
                                   to_bytes("op-" + std::to_string(i)));
  }
  for (ReplicaId id = 1; id <= n; ++id) nodes[id]->start();

  // Cross-shard transactions: one mined key per shard, submitted at
  // replica 1, completion observed via replica 1's coordinator.
  std::map<std::uint64_t, std::size_t> tx_index;  // txid → latency slot
  std::vector<TimePoint> submitted(dtx_count, 0);
  run.dtx_latency.assign(dtx_count, 0);
  dtx[1]->set_on_complete([&run, &sim, &tx_index, &submitted](
                              std::uint64_t txid, bool committed,
                              std::uint64_t, std::uint64_t) {
    if (committed) {
      ++run.dtx_committed;
    } else {
      ++run.dtx_aborted;
    }
    const auto it = tx_index.find(txid);
    if (it != tx_index.end()) {
      run.dtx_latency[it->second] = sim.now() - submitted[it->second];
    }
  });
  const shard::ShardMap map = nodes[1]->placement().map();
  for (std::uint64_t j = 0; j < dtx_count; ++j) {
    std::vector<Bytes> tx_keys;
    for (shard::ShardId s = 0; s < shards; ++s) {
      for (std::uint64_t nonce = 0;; ++nonce) {
        Bytes key = to_bytes("dtx-" + std::to_string(j) + "-" +
                             std::to_string(nonce));
        if (shard::shard_of(map, ByteSpan(key.data(), key.size())) == s) {
          tx_keys.push_back(std::move(key));
          break;
        }
      }
    }
    Writer w;
    w.raw(ByteSpan(reinterpret_cast<const std::uint8_t*>("DTX1"), 4));
    w.vec(tx_keys, [](Writer& wr, const Bytes& key) {
      wr.bytes(ByteSpan(key.data(), key.size()));
    });
    Bytes payload = std::move(w).take();
    const std::uint64_t client = 88'000 + j;
    tx_index[shard::DtxCoordinator::txid_of(client, 1, payload)] = j;
    submitted[j] = sim.now();
    (void)dtx[1]->submit(client, 1, std::move(payload));
  }

  // Every committed entry is deterministic: each S-participant tx adds
  // 2 + 2S entries on top of the client commands.
  const std::uint64_t expect = commands + dtx_count * (2 + 2 * shards);
  const auto t0 = std::chrono::steady_clock::now();
  while (sim.now() < 600'000'000) {
    bool all = run.dtx_committed + run.dtx_aborted >= dtx_count;
    for (ReplicaId id = 1; all && id <= n; ++id) {
      if (nodes[id]->executed_commands() < expect) all = false;
    }
    if (all) {
      run.completed = true;
      run.all_done = sim.now();
      break;
    }
    if (!sim.step()) break;
  }
  run.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  run.agree = true;
  for (shard::ShardId s = 0; s < shards; ++s) {
    for (ReplicaId id = 2; id <= n; ++id) {
      if (nodes[id]->log_digest(s) != nodes[1]->log_digest(s)) {
        run.agree = false;
      }
    }
  }
  run.slots = nodes[1]->committed_slots();
  return run;
}

double kcmd_per_vsec(const ShardedRun& run, std::uint64_t commands) {
  if (run.all_done == 0) return 0.0;
  return static_cast<double>(commands) * 1e6 /
         static_cast<double>(run.all_done) / 1e3;
}

TimePoint quantile(std::vector<TimePoint> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const std::size_t idx = std::min(
      values.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(values.size())));
  return values[idx];
}

smr::SmrOptions bench_options() {
  smr::SmrOptions options;
  // Slot-rate-bound regime: one command per slot, a modest window.
  // Larger batches flatten the S-curve by absorbing the whole workload
  // into a handful of slots per group.
  options.window = 4;
  options.batch_max_commands = 1;
  options.max_slots = 1u << 20;
  return options;
}

constexpr std::uint32_t kShardSweep[] = {1, 2, 4, 8};

void print_table(std::uint32_t n, std::uint64_t commands,
                 std::uint64_t dtx_count) {
  std::printf(
      "\n================================================================\n"
      "Sharded SMR scaling — aggregate committed commands per simulated\n"
      "second (n = %u, %llu single-command requests routed by placement\n"
      "hash, %llu cross-shard transactions, seed 1; S = 1 is one plain\n"
      "consensus group)\n"
      "================================================================\n",
      n, static_cast<unsigned long long>(commands),
      static_cast<unsigned long long>(dtx_count));
  std::printf("%-8s %-8s %-12s %-9s %-11s %-11s %-6s %s\n", "shards",
              "slots", "kcmd/vsec", "speedup", "dtx-p50-ms", "dtx-p99-ms",
              "dtx", "per-shard-agree");
  double baseline = 0.0;
  for (const std::uint32_t shards : kShardSweep) {
    const ShardedRun run =
        run_sharded_fleet(n, shards, bench_options(), commands, dtx_count,
                          /*seed=*/1);
    const double throughput = kcmd_per_vsec(run, commands);
    if (shards == 1) baseline = throughput;
    std::printf(
        "%-8u %-8llu %-12.2f %-9.2f %-11.1f %-11.1f %llu/%llu %s\n", shards,
        static_cast<unsigned long long>(run.slots), throughput,
        baseline > 0 ? throughput / baseline : 0.0,
        static_cast<double>(quantile(run.dtx_latency, 0.5)) / 1000.0,
        static_cast<double>(quantile(run.dtx_latency, 0.99)) / 1000.0,
        static_cast<unsigned long long>(run.dtx_committed),
        static_cast<unsigned long long>(dtx_count),
        run.completed ? (run.agree ? "yes" : "NO") : "DNF");
  }
}

/// CI acceptance gate: S = 4 must clear `bound_x` times the S = 1
/// aggregate with per-shard agreement and every dtx committed.
int run_smoke(std::uint32_t n, std::uint64_t commands, double bound_x) {
  const ShardedRun base =
      run_sharded_fleet(n, 1, bench_options(), commands, /*dtx=*/2,
                        /*seed=*/1);
  const ShardedRun wide =
      run_sharded_fleet(n, 4, bench_options(), commands, /*dtx=*/2,
                        /*seed=*/1);
  const double speedup =
      base.all_done > 0 && wide.all_done > 0
          ? static_cast<double>(base.all_done) /
                static_cast<double>(wide.all_done)
          : 0.0;
  std::printf("shard smoke: n=%u commands=%llu s1=%lluus s4=%lluus "
              "speedup=%.2fx bound=%.1fx agree=%d/%d dtx=%llu+%llu\n",
              n, static_cast<unsigned long long>(commands),
              static_cast<unsigned long long>(base.all_done),
              static_cast<unsigned long long>(wide.all_done), speedup,
              bound_x, base.agree ? 1 : 0, wide.agree ? 1 : 0,
              static_cast<unsigned long long>(base.dtx_committed),
              static_cast<unsigned long long>(wide.dtx_committed));
  if (!base.completed || !wide.completed || !base.agree || !wide.agree) {
    std::fprintf(stderr, "shard smoke: BAD OUTCOME completed=%d/%d "
                         "agree=%d/%d\n",
                 base.completed, wide.completed, base.agree, wide.agree);
    return 2;
  }
  if (base.dtx_committed != 2 || wide.dtx_committed != 2 ||
      base.dtx_aborted + wide.dtx_aborted != 0) {
    std::fprintf(stderr, "shard smoke: cross-shard transactions did not "
                         "all commit\n");
    return 2;
  }
  if (speedup < bound_x) {
    std::fprintf(stderr, "shard smoke: S=4 speedup %.2fx below %.1fx\n",
                 speedup, bound_x);
    return 1;
  }
  return 0;
}

/// Machine-readable scaling baseline (BENCH_sharding.json).
int emit_json(const std::string& path, std::uint32_t n,
              std::uint64_t commands, std::uint64_t dtx_count) {
  struct Row {
    std::uint32_t shards;
    ShardedRun run;
  };
  std::vector<Row> rows;
  for (const std::uint32_t shards : kShardSweep) {
    rows.push_back({shards, run_sharded_fleet(n, shards, bench_options(),
                                              commands, dtx_count,
                                              /*seed=*/1)});
  }
  const double base_t = kcmd_per_vsec(rows.front().run, commands);
  double s4_x = 0.0;
  bool ok = true;
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "emit-json: cannot open %s\n", path.c_str());
    return 2;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"sharding\",\n"
               "  \"n\": %u,\n"
               "  \"commands\": %llu,\n"
               "  \"dtx_per_row\": %llu,\n"
               "  \"rows\": [\n",
               n, static_cast<unsigned long long>(commands),
               static_cast<unsigned long long>(dtx_count));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& [shards, run] = rows[i];
    const double tput = kcmd_per_vsec(run, commands);
    const double speedup = base_t > 0 ? tput / base_t : 0.0;
    if (shards == 4) s4_x = speedup;
    ok = ok && run.completed && run.agree &&
         run.dtx_committed == dtx_count && run.dtx_aborted == 0;
    std::fprintf(
        out,
        "    {\"shards\": %u, \"kcmd_per_vsec\": %.2f, \"speedup_x\": "
        "%.2f, \"slots\": %llu, \"dtx_committed\": %llu, "
        "\"dtx_p50_ms\": %.1f, \"dtx_p99_ms\": %.1f, "
        "\"per_shard_agree\": %s}%s\n",
        shards, tput, speedup, static_cast<unsigned long long>(run.slots),
        static_cast<unsigned long long>(run.dtx_committed),
        static_cast<double>(quantile(run.dtx_latency, 0.5)) / 1000.0,
        static_cast<double>(quantile(run.dtx_latency, 0.99)) / 1000.0,
        run.agree ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"s4_over_s1_x\": %.2f,\n"
               "  \"ok\": %s\n"
               "}\n",
               s4_x, ok ? "true" : "false");
  std::fclose(out);
  std::printf("emit-json: s4_over_s1=%.2fx ok=%d -> %s\n", s4_x, ok ? 1 : 0,
              path.c_str());
  return ok ? 0 : 2;
}

void BM_ShardedThroughput(benchmark::State& state) {
  const auto shards = static_cast<std::uint32_t>(state.range(0));
  double tput = 0.0;
  for (auto _ : state) {
    const ShardedRun run = run_sharded_fleet(/*n=*/4, shards,
                                             bench_options(),
                                             /*commands=*/128, /*dtx=*/0,
                                             /*seed=*/1);
    tput = kcmd_per_vsec(run, 128);
    benchmark::DoNotOptimize(run.all_done);
  }
  state.counters["kcmd_per_vsec"] = tput;
}
BENCHMARK(BM_ShardedThroughput)
    ->Arg(1)
    ->Arg(4)
    ->ArgName("shards")
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t n = 4;
  std::uint64_t commands = 256;
  std::uint64_t dtx_count = 8;
  double smoke_bound_x = 0.0;
  std::string emit_json_path;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--n=", 0) == 0) {
      n = static_cast<std::uint32_t>(
          std::strtoul(arg.c_str() + 4, nullptr, 10));
    } else if (arg.rfind("--commands=", 0) == 0) {
      commands = std::strtoull(arg.c_str() + 11, nullptr, 10);
    } else if (arg.rfind("--dtx=", 0) == 0) {
      dtx_count = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("--smoke-bound-x=", 0) == 0) {
      smoke_bound_x = std::strtod(arg.c_str() + 16, nullptr);
    } else if (arg == "--smoke") {
      smoke_bound_x = 2.5;  // the acceptance bar
    } else if (arg.rfind("--emit-json=", 0) == 0) {
      emit_json_path = arg.substr(12);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (smoke_bound_x > 0) return run_smoke(n, commands, smoke_bound_x);
  if (!emit_json_path.empty()) {
    return emit_json(emit_json_path, n, commands, dtx_count);
  }

  print_table(n, commands, dtx_count);
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
