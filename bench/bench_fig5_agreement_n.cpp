// Figure 5 (top-left): probability of ensuring agreement vs n, with faulty
// leaders in every view (optimal split attack), f/n = 0.2, q = 2*sqrt(n),
// o in {1.6, 1.7, 1.8}.
//
// Columns per o:
//   exact    — 1 - view_disagreement_exact (closed-form model incl. the
//              equivocation-blocking defense);
//   mc       — Monte-Carlo (sampling level, blocking-aware): fraction of
//              attack trials without opposite decisions.
// The paper bound (Thm 7) is also printed; it is vacuous (=0) where its
// Chernoff precondition r <= n/o fails.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/montecarlo.hpp"

namespace {

using namespace probft;
using namespace probft::bench;

constexpr int kTrials = 4000;

void print_figure() {
  print_header("Figure 5 top-left",
               "P(agreement) vs n under the optimal-split attack, f/n = 0.2");
  std::printf("%-6s", "n");
  for (double o : {1.6, 1.7, 1.8}) {
    std::printf(" Pviol(o=%.1f) mc_viol(o=%.1f) mc_viol_qOnly(o=%.1f)", o, o,
                o);
  }
  std::printf("\n");
  for (std::int64_t n = 100; n <= 300; n += 50) {
    std::printf("%-6lld", static_cast<long long>(n));
    for (double o : {1.6, 1.7, 1.8}) {
      const auto p = paper_params(n, 0.2, o);
      const auto mc = sim::mc_agreement_optimal_split(
          p, kTrials, 1000 + static_cast<std::uint64_t>(n));
      std::printf(" %-12.3e %-14.6f %-21.6f",
                  quorum::view_disagreement_exact(p), mc.violation_rate,
                  mc.violation_rate_quorum_only);
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check (paper): P(agreement) = 1 - Pviol stays in [0.999, 1]\n"
      "and improves with n. Pviol is the blocking-aware closed form;\n"
      "mc_viol (%d trials) should be 0. mc_viol_qOnly counts quorum\n"
      "formation only — the quantity the paper's Lemma 5 bounds — and is\n"
      "large: the equivocation-detection rule (Alg. 1 lines 23-25) is what\n"
      "actually protects agreement at these parameters (see EXPERIMENTS.md).\n",
      kTrials);
}

void BM_McAgreement(benchmark::State& state) {
  const auto p = paper_params(state.range(0), 0.2, 1.7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::mc_agreement_optimal_split(p, 200, 9));
  }
}
BENCHMARK(BM_McAgreement)->Arg(100)->Arg(300)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
