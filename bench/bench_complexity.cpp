// Section 3.3: message and communication complexity of ProBFT.
//   - message complexity O(n sqrt(n)): NewLeader O(n) + Propose O(n) +
//     Prepare O(n sqrt n) + Commit O(n sqrt n);
//   - communication (bit) complexity O(n^2 sqrt n) with a view change
//     (Propose carries a deterministic quorum of NewLeader messages, each
//     possibly holding a probabilistic quorum of Prepares);
//   - best case Omega(n sqrt n) without view change, vs PBFT's Omega(n^2).
//
// Measured from the simulated wire: one run with a correct leader (view 1)
// and one with a silent leader (forcing a view change into view 2).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/cluster.hpp"

namespace {

using namespace probft;
using namespace probft::bench;

struct RunStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t newleader = 0;
  std::uint64_t propose = 0;
  std::uint64_t prepare = 0;
  std::uint64_t commit = 0;
  bool decided = false;
};

RunStats run(std::uint32_t n, bool silent_leader) {
  sim::ClusterConfig cfg;
  cfg.protocol = sim::Protocol::kProbft;
  cfg.n = n;
  cfg.f = silent_leader ? (n - 1) / 3 : 0;
  cfg.l = silent_leader ? 1.5 : 2.0;  // keep quorums reachable without f
  cfg.seed = 3;
  if (silent_leader) {
    cfg.behaviors.assign(n, sim::Behavior::kHonest);
    cfg.behaviors[0] = sim::Behavior::kSilent;
  }
  sim::Cluster cluster(cfg);
  cluster.start();
  RunStats out;
  out.decided = cluster.run_to_completion();
  const auto& stats = cluster.network().stats();
  out.messages = stats.sends;
  out.bytes = stats.bytes_sent;
  out.newleader = stats.sends_for(core::tag_byte(core::MsgTag::kNewLeader));
  out.propose = stats.sends_for(core::tag_byte(core::MsgTag::kPropose));
  out.prepare = stats.sends_for(core::tag_byte(core::MsgTag::kPrepare));
  out.commit = stats.sends_for(core::tag_byte(core::MsgTag::kCommit));
  return out;
}

void print_table() {
  print_header("Section 3.3",
               "message/communication complexity, measured on the wire");
  std::printf("--- normal case (correct leader, no view change) ---\n");
  std::printf("%-6s %-10s %-10s %-10s %-10s %-12s %-14s\n", "n", "propose",
              "prepare", "commit", "newleader", "total msgs", "total bytes");
  for (std::uint32_t n : {50U, 100U, 200U}) {
    const auto r = run(n, false);
    std::printf("%-6u %-10llu %-10llu %-10llu %-10llu %-12llu %-14llu\n", n,
                static_cast<unsigned long long>(r.propose),
                static_cast<unsigned long long>(r.prepare),
                static_cast<unsigned long long>(r.commit),
                static_cast<unsigned long long>(r.newleader),
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.bytes));
  }
  std::printf("\n--- view change (silent leader; decide in view >= 2) ---\n");
  std::printf("%-6s %-10s %-10s %-10s %-10s %-12s %-14s\n", "n", "propose",
              "prepare", "commit", "newleader", "total msgs", "total bytes");
  for (std::uint32_t n : {50U, 100U}) {
    const auto r = run(n, true);
    std::printf("%-6u %-10llu %-10llu %-10llu %-10llu %-12llu %-14llu\n", n,
                static_cast<unsigned long long>(r.propose),
                static_cast<unsigned long long>(r.prepare),
                static_cast<unsigned long long>(r.commit),
                static_cast<unsigned long long>(r.newleader),
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.bytes));
  }
  std::printf(
      "\nShape check (paper §3.3): message counts grow ~ n^1.5; bytes in the\n"
      "view-change case grow much faster (Propose ships a deterministic\n"
      "quorum of NewLeader messages, each carrying a prepared certificate\n"
      "with a probabilistic quorum of Prepares -> O(n^2 sqrt n) bits).\n");
}

void BM_NormalCase(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(n, false));
  }
}
BENCHMARK(BM_NormalCase)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_ViewChangeCase(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(n, true));
  }
}
BENCHMARK(BM_ViewChangeCase)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
