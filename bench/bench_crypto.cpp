// Supporting micro-benchmarks: throughput of the from-scratch crypto
// substrate (not a paper figure, but governs the cost model of real
// deployments and justifies the fast SimSuite for Monte-Carlo sweeps).
#include <benchmark/benchmark.h>

#include <cmath>

#include "common/bytes.hpp"
#include "crypto/ecvrf.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/sampler.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"
#include "crypto/suite.hpp"

namespace {

using namespace probft;
using namespace probft::crypto;

void BM_Sha256(benchmark::State& state) {
  const Bytes msg(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(msg));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_Sha512(benchmark::State& state) {
  const Bytes msg(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha512::hash(msg));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(64)->Arg(1024)->Arg(65536);

void BM_Ed25519Sign(benchmark::State& state) {
  const Bytes seed = from_hex(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
  const Bytes msg = to_bytes("propose view=3 value=batch");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ed25519::sign(seed, msg));
  }
}
BENCHMARK(BM_Ed25519Sign);

void BM_Ed25519Verify(benchmark::State& state) {
  const Bytes seed = from_hex(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
  const Bytes msg = to_bytes("propose view=3 value=batch");
  const Bytes pk = ed25519::derive_public(seed);
  const Bytes sig = ed25519::sign(seed, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ed25519::verify(pk, msg, sig));
  }
}
BENCHMARK(BM_Ed25519Verify);

void BM_EcvrfProve(benchmark::State& state) {
  const Bytes seed = from_hex(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
  const Bytes alpha = to_bytes("7|prepare");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecvrf::prove(seed, alpha));
  }
}
BENCHMARK(BM_EcvrfProve);

void BM_EcvrfVerify(benchmark::State& state) {
  const Bytes seed = from_hex(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
  const Bytes alpha = to_bytes("7|prepare");
  const Bytes pk = ed25519::derive_public(seed);
  const auto proof = ecvrf::prove(seed, alpha);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecvrf::verify(pk, alpha, proof.proof));
  }
}
BENCHMARK(BM_EcvrfVerify);

void BM_VrfSample(benchmark::State& state) {
  const auto suite = make_sim_suite();
  const auto kp = suite->keygen(1);
  const auto alpha = sample_alpha(5, "prepare");
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto k = static_cast<std::uint32_t>(
      std::ceil(1.7 * 2.0 * std::sqrt(static_cast<double>(n))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vrf_sample(
        *suite, kp.secret_key, ByteSpan(alpha.data(), alpha.size()), n, k));
  }
}
BENCHMARK(BM_VrfSample)->Arg(100)->Arg(400);

void BM_SuiteCompare(benchmark::State& state) {
  // Relative cost of a full sign+verify in each suite.
  const bool real = state.range(0) == 1;
  const auto suite = real ? make_ed25519_suite() : make_sim_suite();
  const auto kp = suite->keygen(1);
  const Bytes msg = to_bytes("message");
  for (auto _ : state) {
    const auto sig = suite->sign(kp.secret_key, msg);
    benchmark::DoNotOptimize(suite->verify(kp.public_key, msg, sig));
  }
  state.SetLabel(suite->name());
}
BENCHMARK(BM_SuiteCompare)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
