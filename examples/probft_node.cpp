// One consensus replica per OS process, over real TCP sockets.
//
//   terminal 1: ./probft_node --id 1 --peers 127.0.0.1:9001,...,127.0.0.1:9004
//   terminal 2: ./probft_node --id 2 --peers <same list>
//   ...
//
// The peer list is 1-based and shared verbatim by every process: entry i is
// replica i's listen address, and the cluster size n is the list's length.
// Key material is derived deterministically from --seed (the same scheme
// the simulator uses), so processes need no key exchange; --suite ed25519
// switches from the fast simulation suite to real Ed25519 + ECVRF.
//
// Two modes:
//
//  - Single-shot (default): one consensus instance; the process prints
//      DECIDED id=<id> view=<v> value=<hex>
//    when its replica decides, keeps serving peers for --linger-ms (so
//    slower replicas can finish) and exits 0; exits 1 if --deadline-ms
//    passes without a decision.
//
//  - SMR (--smr): a pipelined, batched replicated log (src/smr) serving
//    real clients. --client-port opens the client listener (the wire
//    format is net/client.hpp over net/frame.hpp); replies are sent after
//    in-order execution, and duplicate (client, seq) retries are answered
//    from the last-reply cache without re-executing. The process runs
//    until --run-ms elapses — or exits early once --expect-cmds commands
//    executed (plus --linger-ms for stragglers) — and prints
//      SMRLOG id=<id> slots=<s> base=<b> cmds=<c> digest=<hex>
//    (digest = the truncation-invariant chained log digest) so a harness
//    can assert identical logs across the cluster.
//
//    --wal-dir DIR makes the log durable: decisions and stable
//    checkpoints are written to an fsync'd write-ahead log under DIR, and
//    a restarted process recovers its executed prefix from it before
//    rejoining (printing "RECOVERED id=<id> base=<b> slots=<s>" when it
//    found state). kill -9 + restart must converge to the same digest as
//    the peers — scripts/run_tcp_cluster.sh's restart mode asserts it.
//
//  - Sharded SMR (--shards S, implies --smr): the process serves S
//    independent consensus groups (src/shard) over the same sockets.
//    Client requests route to the group owning their payload hash; a
//    "DTX1"-prefixed request runs the cross-shard 2PC coordinator and is
//    answered with dtx-committed / dtx-aborted. --wal-dir splits into
//    per-group directories (DIR/shard-<s>), SMRLOG/RECOVERED lines gain
//    a shard=<s> field (one line per group), and a final
//      DTX id=<id> committed=<c> aborted=<a> in_flight=<i>
//    line reports transaction outcomes. --expect-cmds counts total
//    executed entries across all groups, dtx bookkeeping entries
//    included (a D-participant tx commits exactly 2 + 2D entries).
//
// SIGTERM/SIGINT stop the event loop gracefully in both modes: the WAL
// is flushed and the final SMRLOG/--stats lines are still printed.
// --stats prints per-tag TransportStats on shutdown in both modes.
// scripts/run_tcp_cluster.sh drives all modes: agreement smoke (default),
// client mode (`client` protocol argument), crash-restart (`restart`).
#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/verify_pool.hpp"
#include "net/client.hpp"
#include "net/tcp_transport.hpp"
#include "shard/dtx.hpp"
#include "shard/preverify.hpp"
#include "shard/sharded_smr.hpp"
#include "sim/node_factory.hpp"
#include "sim/scenario.hpp"
#include "smr/executor.hpp"
#include "smr/preverify.hpp"
#include "store/wal.hpp"

namespace {

using namespace probft;

struct Options {
  ReplicaId id = 0;
  std::vector<net::PeerAddress> peers;  // index 0 = replica 1
  sim::Protocol protocol = sim::Protocol::kProbft;
  std::uint32_t f = 0;
  double o = 1.7;
  double l = 2.0;
  std::uint64_t seed = 1;
  std::string suite = "sim";
  Bytes value;  // empty = the default per-replica value
  std::uint64_t deadline_ms = 30'000;
  std::uint64_t linger_ms = 2'000;
  bool stats = false;
  // ---- SMR mode ----
  bool smr = false;
  std::uint16_t client_port = 0;  // 0 = no client listener
  std::uint64_t run_ms = 30'000;
  std::uint64_t expect_cmds = 0;  // 0 = run the full --run-ms
  std::uint32_t window = 8;
  std::uint32_t batch = 64;
  std::string wal_dir;                      // empty = no durability
  std::uint64_t checkpoint_interval = 16;   // slots; 0 disables
  bool fsync = true;                        // fsync WAL writes
  /// Consensus groups (src/shard). 1 = the plain single-group log; > 1
  /// runs a shard::ShardedSmr fleet — S groups multiplexed over this
  /// process's one transport, requests routed by payload hash, per-shard
  /// WAL namespaces under --wal-dir/shard-<s>, and a cross-shard 2PC
  /// coordinator serving "DTX1" client requests.
  std::uint32_t shards = 1;
  // ---- multi-core replica (docs/ARCHITECTURE.md "Threading model") ----
  /// Signature-verification worker threads feeding a shared verdict
  /// cache; 0 = verify inline on the network thread (single-threaded).
  std::uint32_t verify_threads = 0;
  /// Move client-reply serialization onto a dedicated executor thread.
  bool exec_offload = false;
  /// Serve the linearizable read fast path (leader leases + quorum
  /// read-index, src/smr/reads.hpp) and answer kClientRead frames on the
  /// client port. Off by default: reads cost lease renewal broadcasts.
  bool reads = false;
};

// SIGTERM/SIGINT → stop the transport loop; the normal shutdown path
// (WAL flush, SMRLOG, --stats) then runs. The handler only touches an
// atomic inside TcpTransport::stop(), which is async-signal-safe.
net::TcpTransport* g_transport = nullptr;
volatile std::sig_atomic_t g_signaled = 0;

extern "C" void handle_stop_signal(int /*sig*/) {
  g_signaled = 1;
  if (g_transport != nullptr) g_transport->stop();
}

void usage() {
  std::fprintf(
      stderr,
      "usage: probft_node --id I --peers host:port,host:port,...\n"
      "                   [--protocol probft|pbft|hotstuff] [--f F]\n"
      "                   [--o O] [--l L] [--seed S] [--suite sim|ed25519]\n"
      "                   [--value STRING] [--deadline-ms MS]\n"
      "                   [--linger-ms MS] [--stats BOOL]\n"
      "                   [--smr BOOL] [--client-port P] [--run-ms MS]\n"
      "                   [--expect-cmds N] [--window W] [--batch B]\n"
      "                   [--wal-dir DIR] [--checkpoint-interval SLOTS]\n"
      "                   [--fsync BOOL] [--verify-threads N]\n"
      "                   [--exec-offload BOOL] [--shards S]\n"
      "                   [--reads BOOL]\n");
}

std::uint64_t parse_u64(const std::string& text) {
  if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0]))) {
    throw std::invalid_argument(text);
  }
  std::size_t consumed = 0;
  const std::uint64_t value = std::stoull(text, &consumed);
  if (consumed != text.size()) throw std::invalid_argument(text);
  return value;
}

bool parse_bool(const std::string& text) {
  if (text == "1" || text == "true" || text == "yes") return true;
  if (text == "0" || text == "false" || text == "no") return false;
  throw std::invalid_argument(text);
}

net::PeerAddress parse_host_port(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    throw std::invalid_argument("peer must be host:port: " + text);
  }
  const std::uint64_t port = parse_u64(text.substr(colon + 1));
  if (port == 0 || port > 65535) {
    throw std::invalid_argument("bad port in " + text);
  }
  return net::PeerAddress{text.substr(0, colon),
                          static_cast<std::uint16_t>(port)};
}

std::vector<net::PeerAddress> parse_peers(const std::string& csv) {
  std::vector<net::PeerAddress> peers;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    peers.push_back(parse_host_port(csv.substr(pos, comma - pos)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return peers;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (i + 1 >= argc) return false;
    const std::string value = argv[++i];
    if (key == "--id") {
      opt.id = static_cast<ReplicaId>(parse_u64(value));
    } else if (key == "--peers") {
      opt.peers = parse_peers(value);
    } else if (key == "--protocol") {
      if (!sim::protocol_from_string(value, opt.protocol)) return false;
    } else if (key == "--f") {
      opt.f = static_cast<std::uint32_t>(parse_u64(value));
    } else if (key == "--o") {
      opt.o = std::stod(value);
    } else if (key == "--l") {
      opt.l = std::stod(value);
    } else if (key == "--seed") {
      opt.seed = parse_u64(value);
    } else if (key == "--suite") {
      if (value != "sim" && value != "ed25519") return false;
      opt.suite = value;
    } else if (key == "--value") {
      opt.value = to_bytes(value);
    } else if (key == "--deadline-ms") {
      opt.deadline_ms = parse_u64(value);
    } else if (key == "--linger-ms") {
      opt.linger_ms = parse_u64(value);
    } else if (key == "--stats") {
      opt.stats = parse_bool(value);
    } else if (key == "--smr") {
      opt.smr = parse_bool(value);
    } else if (key == "--client-port") {
      opt.client_port = static_cast<std::uint16_t>(parse_u64(value));
      opt.smr = true;  // a client port only makes sense with the log
    } else if (key == "--run-ms") {
      opt.run_ms = parse_u64(value);
    } else if (key == "--expect-cmds") {
      opt.expect_cmds = parse_u64(value);
    } else if (key == "--window") {
      opt.window = static_cast<std::uint32_t>(parse_u64(value));
    } else if (key == "--batch") {
      opt.batch = static_cast<std::uint32_t>(parse_u64(value));
    } else if (key == "--wal-dir") {
      opt.wal_dir = value;
      opt.smr = true;  // durability only applies to the log
    } else if (key == "--checkpoint-interval") {
      opt.checkpoint_interval = parse_u64(value);
    } else if (key == "--fsync") {
      opt.fsync = parse_bool(value);
    } else if (key == "--verify-threads") {
      opt.verify_threads = static_cast<std::uint32_t>(parse_u64(value));
    } else if (key == "--exec-offload") {
      opt.exec_offload = parse_bool(value);
    } else if (key == "--reads") {
      opt.reads = parse_bool(value);
      opt.smr = true;  // the read path answers against the replicated log
    } else if (key == "--shards") {
      const std::uint64_t shards = parse_u64(value);
      if (shards < 1 || shards > shard::kMaxShards) return false;
      opt.shards = static_cast<std::uint32_t>(shards);
      opt.smr = true;  // groups are replicated logs
    } else {
      return false;
    }
  }
  return opt.id >= 1 && opt.peers.size() >= 2 &&
         opt.id <= opt.peers.size();
}

void print_stats(const net::TransportStats& stats) {
  std::printf("STATS total sends=%llu delivered=%llu dropped=%llu "
              "duplicates=%llu bytes=%llu\n",
              static_cast<unsigned long long>(stats.sends),
              static_cast<unsigned long long>(stats.delivered),
              static_cast<unsigned long long>(stats.dropped),
              static_cast<unsigned long long>(stats.duplicates),
              static_cast<unsigned long long>(stats.bytes_sent));
  for (const auto& [tag, sends] : stats.sends_by_tag) {
    std::printf("STATS tag=0x%02x sends=%llu bytes=%llu\n", tag,
                static_cast<unsigned long long>(sends),
                static_cast<unsigned long long>(stats.bytes_for(tag)));
  }
  std::fflush(stdout);
}

/// The cluster facts a VerifyPool's workers need; sample_size is derived
/// through ReplicaConfig so it cannot drift from what the replica computes.
core::PreverifyContext make_preverify_context(const sim::NodeParams& params) {
  core::ReplicaConfig rc;
  rc.n = params.n;
  rc.f = params.f;
  rc.o = params.o;
  rc.l = params.l;
  core::PreverifyContext ctx;
  ctx.n = params.n;
  ctx.sample_size = rc.sample_size();
  ctx.suite = params.suite;
  ctx.public_keys = params.public_keys;
  return ctx;
}

int run_smr_node(const Options& opt, net::TcpTransport& transport,
                 sim::NodeParams params) {
  params.smr.window = opt.window;
  params.smr.batch_max_commands = opt.batch;
  params.smr.checkpoint_interval = opt.checkpoint_interval;
  params.smr.serve_reads = opt.reads;

  // Multi-core front end (--verify-threads): workers pre-warm a shared
  // thread-safe verdict cache that every per-slot instance then consumes.
  std::shared_ptr<core::VerdictCache> verdicts;
  if (opt.verify_threads > 0) {
    verdicts = std::make_shared<core::VerdictCache>(/*thread_safe=*/true);
    params.verdicts = verdicts;
  }

  // Durability: the replica recovers from the WAL at construction and
  // appends decisions / stable checkpoints to it while running.
  std::unique_ptr<store::Wal> wal;
  if (!opt.wal_dir.empty()) {
    try {
      wal = std::make_unique<store::Wal>(
          store::WalOptions{opt.wal_dir, opt.fsync});
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot open WAL at %s: %s\n",
                   opt.wal_dir.c_str(), e.what());
      return 1;
    }
    params.wal = wal.get();
  }

  // Reply-serialization offload (--exec-offload): the encode runs on the
  // executor thread, and the resulting frame re-enters the loop thread
  // via transport.post() — send_to_client itself is loop-thread-only.
  std::unique_ptr<smr::AsyncExecutor> executor;
  if (opt.exec_offload) executor = std::make_unique<smr::AsyncExecutor>();

  std::unique_ptr<smr::SmrReplica> node;

  // Reply routing: (client, seq) → the connection awaiting the reply,
  // plus a per-client last-reply cache so an already-executed retry is
  // re-answered without re-execution. Both maps are loop-thread-only.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> waiting;
  std::map<std::uint64_t, net::ClientReply> last_reply;

  smr::AsyncExecutor* exec = executor.get();
  params.on_execute = [&transport, &waiting, &last_reply,
                       exec](const smr::ExecutedCommand& cmd) {
    net::ClientReply reply;
    reply.client_id = cmd.client;
    reply.seq = cmd.seq;
    reply.slot = cmd.slot;
    reply.result = cmd.payload;
    const auto it = waiting.find({cmd.client, cmd.seq});
    if (it != waiting.end()) {
      const std::uint64_t conn = it->second;
      waiting.erase(it);
      if (exec != nullptr) {
        exec->run_or_submit([&transport, conn, reply] {
          Bytes frame = reply.encode();
          transport.post([&transport, conn, frame = std::move(frame)] {
            transport.send_to_client(conn, net::kClientReplyTag, frame);
          });
        });
      } else {
        transport.send_to_client(conn, net::kClientReplyTag, reply.encode());
      }
    }
    last_reply[cmd.client] = std::move(reply);
  };

  node = sim::make_smr_node(params, sim::transport_host(
                                        transport, opt.id,
                                        transport.timer_setter()));

  // Inbound admission: with --verify-threads the expensive half of
  // admission (decode + signature/VRF checks) runs on pool workers; the
  // drain callback re-injects messages on the loop thread in submission
  // order, so the replica sees the exact sequence it would have seen
  // inline — just with its verdict cache already warm.
  std::unique_ptr<core::VerifyPool> pool;
  if (opt.verify_threads > 0) {
    pool = std::make_unique<core::VerifyPool>(
        make_preverify_context(params), verdicts, opt.verify_threads,
        smr::preverify_tasks);
    pool->set_ready_callback([&transport, &pool, &node] {
      transport.post([&pool, &node] {
        pool->drain(
            [&node](ReplicaId from, std::uint8_t tag, const Bytes& m) {
              node->on_message(from, tag, m);
            });
      });
    });
    transport.register_handler(
        opt.id, [&pool](ReplicaId from, std::uint8_t tag, const Bytes& m) {
          pool->submit(from, tag, m);
        });
  } else {
    transport.register_handler(
        opt.id, [&node](ReplicaId from, std::uint8_t tag, const Bytes& m) {
          node->on_message(from, tag, m);
        });
  }
  transport.set_client_handler([&transport, &node, &waiting, &last_reply](
                                   std::uint64_t conn, std::uint8_t tag,
                                   const Bytes& payload) {
    if (tag == net::kClientReadTag) {
      // Read path: the engine answers through its own state machine
      // (lease / read-index / parked min_index waits) and calls back on
      // the loop thread; with --reads off every mode answers kRejected,
      // which the reply carries back instead of leaving the client to
      // infer from a timeout.
      try {
        const auto read =
            net::ReadRequest::decode(ByteSpan(payload.data(), payload.size()));
        node->submit_read(
            read.key, read.consistency, read.min_index,
            [&transport, conn, client_id = read.client_id,
             read_id = read.read_id](const smr::SmrReplica::ReadResult& r) {
              net::ReadReply reply;
              reply.client_id = client_id;
              reply.read_id = read_id;
              reply.status = r.status;
              reply.slot = r.slot;
              reply.index = r.index;
              reply.value = r.value;
              transport.send_to_client(conn, net::kClientReadReplyTag,
                                       reply.encode());
            });
      } catch (const CodecError&) {
        // Malformed read: drop.
      }
      return;
    }
    if (tag != net::kClientRequestTag) return;
    try {
      const auto request =
          net::ClientRequest::decode(ByteSpan(payload.data(), payload.size()));
      if (request.seq <= node->last_executed_seq(request.client_id)) {
        // Already executed: answer the retry from the cache (only the
        // client's latest request is cached, PBFT-style).
        const auto cached = last_reply.find(request.client_id);
        if (cached != last_reply.end() &&
            cached->second.seq == request.seq) {
          transport.send_to_client(conn, net::kClientReplyTag,
                                   cached->second.encode());
        }
        return;
      }
      // Enqueue, then route the reply. A false return is either a retry
      // of still-pending work (keep/redirect the route to the fresh
      // connection) or an outright rejection (oversized payload, intake
      // backpressure) — the latter answers an explicit kRejected so the
      // client backs off instead of waiting out its timeout, and must
      // not leave a route behind (the request will never execute, so a
      // waiting entry would leak).
      const bool accepted = node->submit_request(
          request.client_id, request.seq, request.payload);
      if (accepted || node->has_pending(request.client_id, request.seq)) {
        waiting[{request.client_id, request.seq}] = conn;
      } else {
        net::ClientReply reject;
        reject.client_id = request.client_id;
        reject.seq = request.seq;
        reject.status = net::ReplyStatus::kRejected;
        transport.send_to_client(conn, net::kClientReplyTag,
                                 reject.encode());
      }
    } catch (const CodecError&) {
      // Malformed client request: drop (the framing layer already
      // poisons truly corrupt streams).
    }
  });

  if (node->recovered_slots() > 0) {
    std::printf("RECOVERED id=%u base=%llu slots=%llu\n", opt.id,
                static_cast<unsigned long long>(node->log_base()),
                static_cast<unsigned long long>(node->recovered_slots()));
    std::fflush(stdout);
  }

  node->start();
  const std::uint64_t expect = opt.expect_cmds;
  const auto caught_up = [&node, expect] {
    return expect > 0 && node->executed_commands() >= expect;
  };
  const std::function<bool()> done =
      expect > 0 ? std::function<bool()>(caught_up) : nullptr;
  const bool reached = transport.run_until(done, opt.run_ms * 1000);
  // Keep serving peers/clients so slower replicas reach the same log.
  // (A stop signal makes both loops return immediately: stop() is sticky.)
  transport.run_until(nullptr, opt.linger_ms * 1000);

  if (wal) wal->sync();  // flush any buffered tail before reporting
  std::printf("SMRLOG id=%u slots=%llu base=%llu cmds=%llu digest=%s\n",
              opt.id,
              static_cast<unsigned long long>(node->committed_slots()),
              static_cast<unsigned long long>(node->log_base()),
              static_cast<unsigned long long>(node->executed_commands()),
              node->log_digest().c_str());
  std::fflush(stdout);
  if (opt.stats) print_stats(transport.stats());
  if (g_signaled) return 0;  // clean stop on request, not a failure
  if (expect > 0 && !reached) {
    std::fprintf(stderr, "executed %llu/%llu commands within %llu ms\n",
                 static_cast<unsigned long long>(node->executed_commands()),
                 static_cast<unsigned long long>(expect),
                 static_cast<unsigned long long>(opt.run_ms));
    return 1;
  }
  return 0;
}

/// --shards S: one process serves S consensus groups (shard::ShardedSmr)
/// over the same transport. Mirrors run_smr_node's wiring — verdict
/// cache, verify pool (shard::preverify_tasks, so signature batches span
/// all groups), WAL durability, client reply routing — plus the dtx
/// coordinator for cross-shard "DTX1" transactions. Prints one SMRLOG
/// line per shard so harnesses assert per-shard digest agreement.
int run_sharded_node(const Options& opt, net::TcpTransport& transport,
                     sim::NodeParams params) {
  params.smr.window = opt.window;
  params.smr.batch_max_commands = opt.batch;
  params.smr.checkpoint_interval = opt.checkpoint_interval;
  params.smr.serve_reads = opt.reads;

  std::shared_ptr<core::VerdictCache> verdicts;
  if (opt.verify_threads > 0) {
    verdicts = std::make_shared<core::VerdictCache>(/*thread_safe=*/true);
  }

  // Durability: one WAL per group under its own directory, so each
  // group's decide/checkpoint stream has a private segment namespace.
  std::vector<std::unique_ptr<store::Wal>> wals;
  std::vector<store::Wal*> wal_ptrs;
  if (!opt.wal_dir.empty()) {
    for (shard::ShardId s = 0; s < opt.shards; ++s) {
      try {
        wals.push_back(std::make_unique<store::Wal>(store::WalOptions{
            opt.wal_dir + "/shard-" + std::to_string(s), opt.fsync}));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "cannot open WAL for shard %u under %s: %s\n",
                     s, opt.wal_dir.c_str(), e.what());
        return 1;
      }
      wal_ptrs.push_back(wals.back().get());
    }
  }

  std::unique_ptr<smr::AsyncExecutor> executor;
  if (opt.exec_offload) executor = std::make_unique<smr::AsyncExecutor>();

  std::unique_ptr<shard::ShardedSmr> node;
  std::unique_ptr<shard::DtxCoordinator> dtx;

  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> waiting;
  std::map<std::uint64_t, net::ClientReply> last_reply;

  smr::AsyncExecutor* exec = executor.get();
  const auto route_reply = [&transport, &waiting, &last_reply,
                            exec](const net::ClientReply& reply) {
    const auto it = waiting.find({reply.client_id, reply.seq});
    if (it != waiting.end()) {
      const std::uint64_t conn = it->second;
      waiting.erase(it);
      if (exec != nullptr) {
        exec->run_or_submit([&transport, conn, reply] {
          Bytes frame = reply.encode();
          transport.post([&transport, conn, frame = std::move(frame)] {
            transport.send_to_client(conn, net::kClientReplyTag, frame);
          });
        });
      } else {
        transport.send_to_client(conn, net::kClientReplyTag, reply.encode());
      }
    }
    last_reply[reply.client_id] = reply;
  };

  shard::ShardedSmrConfig sc;
  sc.base.id = params.id;
  sc.base.n = params.n;
  sc.base.f = params.f;
  sc.base.o = params.o;
  sc.base.l = params.l;
  sc.base.pipeline = params.smr;
  sc.base.fast_verify = params.fast_verify;
  sc.base.suite = params.suite;
  sc.base.secret_key = params.secret_key;
  sc.base.public_keys = params.public_keys;
  sc.base.verdicts = verdicts;
  sc.base.sync = params.sync;
  sc.map.version = 1;
  sc.map.shard_count = opt.shards;
  sc.wals = wal_ptrs;
  sc.on_execute = [&dtx, &route_reply](shard::ShardId s,
                                       const smr::ExecutedCommand& cmd) {
    if (dtx) dtx->on_execute(s, cmd);
    // Dtx-internal entries (DXB1/DXP1/DXD1/DXA1 under synthetic per-tx
    // clients) are protocol bookkeeping, not client commands — the
    // client's reply comes from the coordinator's on_complete instead.
    if (cmd.payload.size() >= 4 && cmd.payload[0] == 'D' &&
        cmd.payload[1] == 'X') {
      return;
    }
    net::ClientReply reply;
    reply.client_id = cmd.client;
    reply.seq = cmd.seq;
    reply.slot = cmd.slot;
    reply.result = cmd.payload;
    route_reply(reply);
  };

  try {
    node = std::make_unique<shard::ShardedSmr>(
        std::move(sc), sim::transport_host(transport, opt.id,
                                           transport.timer_setter()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot start sharded service: %s\n", e.what());
    return 1;
  }
  dtx = std::make_unique<shard::DtxCoordinator>(*node,
                                                transport.timer_setter());
  dtx->set_on_complete([&route_reply](std::uint64_t /*txid*/, bool committed,
                                      std::uint64_t origin_client,
                                      std::uint64_t origin_seq) {
    if (origin_client == 0) return;  // learned via BEGIN, no local client
    net::ClientReply reply;
    reply.client_id = origin_client;
    reply.seq = origin_seq;
    reply.result = to_bytes(committed ? "dtx-committed" : "dtx-aborted");
    route_reply(reply);
  });

  std::unique_ptr<core::VerifyPool> pool;
  if (opt.verify_threads > 0) {
    pool = std::make_unique<core::VerifyPool>(
        make_preverify_context(params), verdicts, opt.verify_threads,
        shard::preverify_tasks);
    pool->set_ready_callback([&transport, &pool, &node] {
      transport.post([&pool, &node] {
        pool->drain(
            [&node](ReplicaId from, std::uint8_t tag, const Bytes& m) {
              node->on_message(from, tag, m);
            });
      });
    });
    transport.register_handler(
        opt.id, [&pool](ReplicaId from, std::uint8_t tag, const Bytes& m) {
          pool->submit(from, tag, m);
        });
  } else {
    transport.register_handler(
        opt.id, [&node](ReplicaId from, std::uint8_t tag, const Bytes& m) {
          node->on_message(from, tag, m);
        });
  }
  transport.set_client_handler([&transport, &node, &dtx, &waiting,
                                &last_reply](std::uint64_t conn,
                                             std::uint8_t tag,
                                             const Bytes& payload) {
    if (tag == net::kClientReadTag) {
      // Reads route to the group owning the key — writes place by
      // read_view_key(payload), so key and writes meet the same group.
      try {
        const auto read =
            net::ReadRequest::decode(ByteSpan(payload.data(), payload.size()));
        node->submit_read(
            read.key, read.consistency, read.min_index,
            [&transport, conn, client_id = read.client_id,
             read_id = read.read_id](const smr::SmrReplica::ReadResult& r) {
              net::ReadReply reply;
              reply.client_id = client_id;
              reply.read_id = read_id;
              reply.status = r.status;
              reply.slot = r.slot;
              reply.index = r.index;
              reply.value = r.value;
              transport.send_to_client(conn, net::kClientReadReplyTag,
                                       reply.encode());
            });
      } catch (const CodecError&) {
        // Malformed read: drop.
      }
      return;
    }
    if (tag != net::kClientRequestTag) return;
    try {
      const auto request =
          net::ClientRequest::decode(ByteSpan(payload.data(), payload.size()));
      if (shard::DtxCoordinator::is_dtx_request(request.payload)) {
        // Cross-shard transaction. A retry of a finished tx is answered
        // from the coordinator's outcome table (the origin (client, seq)
        // never enters any group's log, so the dedup tables can't).
        const std::uint64_t txid = shard::DtxCoordinator::txid_of(
            request.client_id, request.seq, request.payload);
        if (const auto done = dtx->completed_status(txid)) {
          net::ClientReply reply;
          reply.client_id = request.client_id;
          reply.seq = request.seq;
          reply.result = to_bytes(*done ? "dtx-committed" : "dtx-aborted");
          transport.send_to_client(conn, net::kClientReplyTag,
                                   reply.encode());
          return;
        }
        if (dtx->submit(request.client_id, request.seq, request.payload)) {
          waiting[{request.client_id, request.seq}] = conn;
        }
        return;
      }
      // Ordinary request: dedup against the OWNING group's tables (each
      // group has its own per-client last-executed map).
      const shard::ShardId s = node->placement().shard_of(
          ByteSpan(request.payload.data(), request.payload.size()));
      const smr::SmrReplica& group = node->group(s);
      if (request.seq <= group.last_executed_seq(request.client_id)) {
        const auto cached = last_reply.find(request.client_id);
        if (cached != last_reply.end() &&
            cached->second.seq == request.seq) {
          transport.send_to_client(conn, net::kClientReplyTag,
                                   cached->second.encode());
        }
        return;
      }
      const bool accepted = node->submit_request(
          request.client_id, request.seq, request.payload);
      if (accepted || group.has_pending(request.client_id, request.seq)) {
        waiting[{request.client_id, request.seq}] = conn;
      } else {
        net::ClientReply reject;
        reject.client_id = request.client_id;
        reject.seq = request.seq;
        reject.status = net::ReplyStatus::kRejected;
        transport.send_to_client(conn, net::kClientReplyTag,
                                 reject.encode());
      }
    } catch (const CodecError&) {
      // Malformed client request: drop.
    }
  });

  bool recovered = false;
  for (shard::ShardId s = 0; s < node->shard_count(); ++s) {
    if (node->group(s).recovered_slots() == 0) continue;
    recovered = true;
    std::printf("RECOVERED id=%u shard=%u base=%llu slots=%llu\n", opt.id, s,
                static_cast<unsigned long long>(node->group(s).log_base()),
                static_cast<unsigned long long>(
                    node->group(s).recovered_slots()));
  }
  std::fflush(stdout);

  node->start();
  // After the groups are live: re-derive in-flight dtx state from the
  // recovered logs and resume driving (idempotent — the engines dedup
  // re-submitted transitions).
  if (recovered) dtx->rebuild_from_logs();

  // --expect-cmds counts TOTAL executed entries across all groups,
  // dtx bookkeeping included (every entry count is deterministic: a
  // D-participant tx commits exactly 2 + 2D entries), because the
  // aggregate survives recovery where a client-only counter would not.
  const std::uint64_t expect = opt.expect_cmds;
  const auto caught_up = [&node, expect] {
    return expect > 0 && node->executed_commands() >= expect;
  };
  const std::function<bool()> done =
      expect > 0 ? std::function<bool()>(caught_up) : nullptr;
  const bool reached = transport.run_until(done, opt.run_ms * 1000);
  transport.run_until(nullptr, opt.linger_ms * 1000);

  for (const auto& wal : wals) wal->sync();
  for (shard::ShardId s = 0; s < node->shard_count(); ++s) {
    const smr::SmrReplica& group = node->group(s);
    std::printf("SMRLOG id=%u shard=%u slots=%llu base=%llu cmds=%llu "
                "digest=%s\n",
                opt.id, s,
                static_cast<unsigned long long>(group.committed_slots()),
                static_cast<unsigned long long>(group.log_base()),
                static_cast<unsigned long long>(group.executed_commands()),
                group.log_digest().c_str());
  }
  std::printf("DTX id=%u committed=%llu aborted=%llu in_flight=%llu\n",
              opt.id, static_cast<unsigned long long>(dtx->committed()),
              static_cast<unsigned long long>(dtx->aborted()),
              static_cast<unsigned long long>(dtx->in_flight()));
  std::fflush(stdout);
  if (opt.stats) print_stats(transport.stats());
  if (g_signaled) return 0;
  if (expect > 0 && !reached) {
    std::fprintf(stderr, "executed %llu/%llu entries within %llu ms\n",
                 static_cast<unsigned long long>(node->executed_commands()),
                 static_cast<unsigned long long>(expect),
                 static_cast<unsigned long long>(opt.run_ms));
    return 1;
  }
  return 0;
}

int run_single_shot(const Options& opt, net::TcpTransport& transport,
                    sim::NodeParams params) {
  bool decided = false;
  core::ProtocolHost host = sim::transport_host(transport, opt.id,
                                                transport.timer_setter());
  host.on_decide = [&decided, &opt](View view, const Bytes& value) {
    if (decided) return;
    decided = true;
    std::printf("DECIDED id=%u view=%llu value=%s\n", opt.id,
                static_cast<unsigned long long>(view),
                to_hex(value).c_str());
    std::fflush(stdout);
  };

  // --verify-threads works here too, with the core-protocol extractor
  // (no SMR slot envelope). PBFT/HotStuff tags extract zero tasks, so the
  // pool degenerates to an ordered passthrough for those protocols.
  std::shared_ptr<core::VerdictCache> verdicts;
  if (opt.verify_threads > 0) {
    verdicts = std::make_shared<core::VerdictCache>(/*thread_safe=*/true);
    params.verdicts = verdicts;
  }

  const auto node = sim::make_honest_node(params, std::move(host));

  std::unique_ptr<core::VerifyPool> pool;
  if (opt.verify_threads > 0) {
    pool = std::make_unique<core::VerifyPool>(make_preverify_context(params),
                                              verdicts, opt.verify_threads);
    pool->set_ready_callback([&transport, &pool, &node] {
      transport.post([&pool, &node] {
        pool->drain(
            [&node](ReplicaId from, std::uint8_t tag, const Bytes& m) {
              node->on_message(from, tag, m);
            });
      });
    });
    transport.register_handler(
        opt.id, [&pool](ReplicaId from, std::uint8_t tag, const Bytes& m) {
          pool->submit(from, tag, m);
        });
  } else {
    transport.register_handler(
        opt.id, [&node](ReplicaId from, std::uint8_t tag, const Bytes& m) {
          node->on_message(from, tag, m);
        });
  }

  node->start();
  transport.run_until([&decided]() { return decided; },
                      opt.deadline_ms * 1000);
  if (!decided) {
    if (g_signaled) {  // asked to stop — not a timeout failure
      if (opt.stats) print_stats(transport.stats());
      return 0;
    }
    std::fprintf(stderr, "no decision within %llu ms\n",
                 static_cast<unsigned long long>(opt.deadline_ms));
    if (opt.stats) print_stats(transport.stats());
    return 1;
  }
  // Keep answering peers so slower replicas can reach their own quorums.
  transport.run_until(nullptr, opt.linger_ms * 1000);
  if (opt.stats) print_stats(transport.stats());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    if (!parse_args(argc, argv, opt)) {
      usage();
      return 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad argument: %s\n", e.what());
    usage();
    return 2;
  }
  const auto n = static_cast<std::uint32_t>(opt.peers.size());

  // Deterministic cluster-wide key material, same derivation as the
  // simulator: replica i's keypair is keygen(mix64(seed, i)).
  const auto suite = opt.suite == "ed25519" ? crypto::make_ed25519_suite()
                                            : crypto::make_sim_suite();
  std::vector<Bytes> key_table(n + 1);
  Bytes secret_key;
  for (ReplicaId id = 1; id <= n; ++id) {
    auto keys = suite->keygen(mix64(opt.seed, id));
    key_table[id] = std::move(keys.public_key);
    if (id == opt.id) secret_key = std::move(keys.secret_key);
  }

  net::TcpTransportConfig tc;
  tc.self = opt.id;
  tc.n = n;
  tc.listen_host = opt.peers[opt.id - 1].host;
  tc.listen_port = opt.peers[opt.id - 1].port;
  for (ReplicaId id = 1; id <= n; ++id) tc.peers[id] = opt.peers[id - 1];
  if (opt.client_port != 0) {
    tc.client_port_enabled = true;
    tc.client_listen_host = tc.listen_host;
    tc.client_listen_port = opt.client_port;
  }

  std::unique_ptr<net::TcpTransport> transport;
  try {
    transport = std::make_unique<net::TcpTransport>(std::move(tc));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot start transport: %s\n", e.what());
    return 1;
  }
  g_transport = transport.get();
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);

  sim::NodeParams params;
  params.protocol = opt.protocol;
  params.id = opt.id;
  params.n = n;
  params.f = opt.f;
  params.o = opt.o;
  params.l = opt.l;
  params.my_value = opt.value.empty()
                        ? sim::default_node_value({}, opt.id)
                        : opt.value;
  params.suite = suite.get();
  params.secret_key = secret_key;
  params.public_keys = crypto::PublicKeyDir(std::move(key_table));
  // Real clusters need the first view to survive process startup and
  // connection establishment (dial retries run at 100 ms), so the view-1
  // timer is generous compared to the simulator's 100 ms default.
  params.sync.base_timeout = 1'000'000;  // 1 s

  if (opt.smr && opt.shards > 1) {
    return run_sharded_node(opt, *transport, std::move(params));
  }
  return opt.smr ? run_smr_node(opt, *transport, std::move(params))
                 : run_single_shot(opt, *transport, std::move(params));
}
