// Quickstart: run one ProBFT consensus instance on a simulated cluster.
//
//   $ ./examples/quickstart [n] [seed]
//
// Builds n replicas (default 16), lets the view-1 leader propose, and
// prints every decision plus the wire statistics. Demonstrates the three
// public entry points most users need: ClusterConfig, Cluster, and the
// per-replica inspection API.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sim/cluster.hpp"

int main(int argc, char** argv) {
  using namespace probft;

  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 16;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;

  sim::ClusterConfig cfg;
  cfg.protocol = sim::Protocol::kProbft;
  cfg.n = n;
  cfg.f = 0;        // all honest in this quickstart
  cfg.o = 1.7;      // sample size s = ceil(o * q)
  cfg.l = 2.0;      // quorum size q = ceil(l * sqrt(n))
  cfg.seed = seed;
  cfg.latency.min_delay = 1'000;       // 1 ms
  cfg.latency.max_delay_post = 8'000;  // Delta = 8 ms

  std::printf("ProBFT quickstart: n=%u, q=%u-message probabilistic quorums\n",
              n, static_cast<std::uint32_t>(
                     std::ceil(cfg.l * std::sqrt(static_cast<double>(n)))));

  sim::Cluster cluster(cfg);
  cluster.start();
  const bool all_decided = cluster.run_to_completion();

  std::printf("\nall correct replicas decided: %s\n",
              all_decided ? "yes" : "NO");
  std::printf("agreement: %s\n", cluster.agreement_ok() ? "ok" : "VIOLATED");

  std::printf("\ndecisions:\n");
  for (const auto& d : cluster.decisions()) {
    std::printf("  replica %2u decided in view %llu at t=%.3f ms  value=%s\n",
                d.replica, static_cast<unsigned long long>(d.view),
                static_cast<double>(d.at) / 1000.0,
                to_hex(ByteSpan(d.value.data(),
                                std::min<std::size_t>(d.value.size(), 8)))
                    .c_str());
  }

  const auto& stats = cluster.network().stats();
  std::printf("\nwire statistics:\n");
  std::printf("  total messages : %llu\n",
              static_cast<unsigned long long>(stats.sends));
  std::printf("  total bytes    : %llu\n",
              static_cast<unsigned long long>(stats.bytes_sent));
  std::printf("  propose        : %llu\n",
              static_cast<unsigned long long>(
                  stats.sends_for(core::tag_byte(core::MsgTag::kPropose))));
  std::printf("  prepare        : %llu\n",
              static_cast<unsigned long long>(
                  stats.sends_for(core::tag_byte(core::MsgTag::kPrepare))));
  std::printf("  commit         : %llu\n",
              static_cast<unsigned long long>(
                  stats.sends_for(core::tag_byte(core::MsgTag::kCommit))));
  std::printf(
      "\nCompare with PBFT's 2n(n-1)+n-1 = %u messages for the same n.\n",
      2 * n * (n - 1) + n - 1);
  return all_decided && cluster.agreement_ok() ? 0 : 1;
}
