// Replicated key-value store: state machine replication on top of ProBFT.
//
//   $ ./examples/kv_smr
//
// The paper's conclusion names "a scalable state machine replication
// protocol" as the natural application of ProBFT. This example builds the
// classical SMR loop: client commands are ordered by running one
// single-shot ProBFT instance per log slot (the slot's leader proposes the
// pending client command); every replica applies the decided commands to
// its local key-value store in log order. At the end, all replica states
// must be identical (byte-for-byte digests), demonstrating that
// probabilistic agreement is strong enough to keep replicas consistent.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"
#include "sim/cluster.hpp"

namespace {

using namespace probft;

/// The replicated state machine: a string->string map with SET/DEL ops.
class KvStore {
 public:
  void apply(const std::string& command) {
    // Format: "SET key value" or "DEL key".
    if (command.rfind("SET ", 0) == 0) {
      const auto rest = command.substr(4);
      const auto space = rest.find(' ');
      if (space != std::string::npos) {
        data_[rest.substr(0, space)] = rest.substr(space + 1);
      }
    } else if (command.rfind("DEL ", 0) == 0) {
      data_.erase(command.substr(4));
    }
  }

  [[nodiscard]] std::string digest() const {
    Bytes blob;
    for (const auto& [key, value] : data_) {
      const Bytes k = to_bytes(key), v = to_bytes(value);
      blob.insert(blob.end(), k.begin(), k.end());
      blob.push_back(0);
      blob.insert(blob.end(), v.begin(), v.end());
      blob.push_back(0);
    }
    return to_hex(crypto::sha256(ByteSpan(blob.data(), blob.size())));
  }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] const std::map<std::string, std::string>& data() const {
    return data_;
  }

 private:
  std::map<std::string, std::string> data_;
};

/// Orders one command with a fresh single-shot ProBFT instance: the client
/// hands the command to the slot's leader (replica 1 in view 1), consensus
/// runs, and the decided value is returned. Returns empty on (improbable)
/// non-termination within the deadline.
Bytes order_command(const std::string& command, std::uint32_t n,
                    std::uint64_t slot) {
  sim::ClusterConfig cfg;
  cfg.protocol = sim::Protocol::kProbft;
  cfg.n = n;
  cfg.f = 0;
  cfg.seed = mix64(0x5e55104eULL, slot);  // independent run per slot
  cfg.my_values.assign(n, Bytes{});
  cfg.my_values[0] = to_bytes(command);  // leader of view 1 proposes it
  sim::Cluster cluster(cfg);
  cluster.start();
  if (!cluster.run_to_completion()) return {};
  const auto values = cluster.decided_values();
  if (values.size() != 1) return {};  // would be an agreement violation
  return *values.begin();
}

}  // namespace

int main() {
  constexpr std::uint32_t kReplicas = 10;
  const std::vector<std::string> workload = {
      "SET user:1 alice",    "SET user:2 bob",
      "SET balance:1 100",   "SET balance:2 250",
      "SET user:3 carol",    "DEL user:2",
      "SET balance:1 175",   "SET config:mode fast",
      "DEL balance:2",       "SET user:2 dave",
  };

  std::printf("ProBFT-SMR: replicating a KV store over %u replicas, "
              "%zu commands\n\n", kReplicas, workload.size());

  // Every replica maintains its own KvStore and applies the *decided*
  // command of each slot in order.
  std::vector<KvStore> stores(kReplicas);
  for (std::size_t slot = 0; slot < workload.size(); ++slot) {
    const Bytes decided = order_command(workload[slot], kReplicas, slot);
    if (decided.empty()) {
      std::printf("slot %zu: consensus did not terminate!\n", slot);
      return 1;
    }
    const std::string command(decided.begin(), decided.end());
    for (auto& store : stores) store.apply(command);
    std::printf("slot %2zu committed: %s\n", slot, command.c_str());
  }

  std::printf("\nfinal state (%zu keys):\n", stores[0].data().size());
  for (const auto& [key, value] : stores[0].data()) {
    std::printf("  %-14s = %s\n", key.c_str(), value.c_str());
  }

  std::printf("\nper-replica state digests:\n");
  bool consistent = true;
  for (std::uint32_t i = 0; i < kReplicas; ++i) {
    const auto digest = stores[i].digest();
    std::printf("  replica %2u: %s\n", i + 1, digest.substr(0, 16).c_str());
    if (digest != stores[0].digest()) consistent = false;
  }
  std::printf("\nreplica states identical: %s\n",
              consistent ? "yes" : "NO (BUG)");
  return consistent ? 0 : 1;
}
