// SMR client: submits requests to a probft_node cluster's client ports
// and measures end-to-end (submit → executed reply) latency.
//
//   ./probft_client --servers 127.0.0.1:9101,127.0.0.1:9102,...
//       [--requests N] [--client-id C] [--mode closed|open]
//       [--retry-ms R] [--timeout-ms T] [--force-retry 1]
//
// Requests are ClientRequest{client_id, seq, payload} frames
// (net/client.hpp over net/frame.hpp). The client targets the first
// server (the round-robin view-1 leader in a fresh cluster) and retries
// unanswered requests against every server after --retry-ms — duplicate
// submissions are safe because the SMR layer executes each (client, seq)
// at most once and re-answers executed retries from its reply cache.
// --force-retry deterministically sends the first request twice (the
// cluster harness uses it to assert exactly-once execution under client
// retries). A request counts as completed on its first reply; later
// replies for the same seq are counted as duplicates, not completions.
//
// Closed-loop mode keeps one request outstanding (latency-oriented);
// open-loop fires everything up front (throughput-oriented). Exit 0 iff
// every request got a reply. Summary lines:
//   CLIENT ok requests=N replies=N retries=R duplicates=D wall_ms=...
//   LATENCY p50_us=... p90_us=... p99_us=...
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/client.hpp"
#include "net/frame.hpp"

namespace {

using namespace probft;

struct Options {
  std::vector<std::pair<std::string, std::uint16_t>> servers;
  std::uint64_t requests = 16;
  std::uint64_t client_id = 77'001;
  bool open_loop = false;
  std::uint64_t retry_ms = 2'000;
  std::uint64_t timeout_ms = 30'000;
  bool force_retry = false;
};

std::uint64_t now_us() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1'000;
}

std::uint64_t parse_u64(const std::string& text) {
  if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0]))) {
    throw std::invalid_argument(text);
  }
  std::size_t consumed = 0;
  const std::uint64_t value = std::stoull(text, &consumed);
  if (consumed != text.size()) throw std::invalid_argument(text);
  return value;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (i + 1 >= argc) return false;
    const std::string value = argv[++i];
    if (key == "--servers") {
      std::size_t pos = 0;
      while (pos < value.size()) {
        const std::size_t comma = value.find(',', pos);
        const std::string entry = value.substr(pos, comma - pos);
        const std::size_t colon = entry.rfind(':');
        if (colon == std::string::npos || colon == 0) return false;
        opt.servers.emplace_back(
            entry.substr(0, colon),
            static_cast<std::uint16_t>(parse_u64(entry.substr(colon + 1))));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (key == "--requests") {
      opt.requests = parse_u64(value);
    } else if (key == "--client-id") {
      opt.client_id = parse_u64(value);
    } else if (key == "--mode") {
      if (value == "closed") {
        opt.open_loop = false;
      } else if (value == "open") {
        opt.open_loop = true;
      } else {
        return false;
      }
    } else if (key == "--retry-ms") {
      opt.retry_ms = parse_u64(value);
    } else if (key == "--timeout-ms") {
      opt.timeout_ms = parse_u64(value);
    } else if (key == "--force-retry") {
      opt.force_retry = value == "1" || value == "true";
    } else {
      return false;
    }
  }
  return !opt.servers.empty() && opt.requests >= 1;
}

/// One connection per server; a dead connection stays closed (fd < 0) and
/// its server simply never answers — retries cover the rest.
struct ServerConn {
  int fd = -1;
  net::FrameDecoder decoder;
};

int dial(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* result = nullptr;
  if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &result) != 0 ||
      result == nullptr) {
    return -1;
  }
  int fd = ::socket(result->ai_family, SOCK_STREAM, 0);
  if (fd >= 0 &&
      ::connect(fd, result->ai_addr, result->ai_addrlen) != 0) {
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd >= 0) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    if (!parse_args(argc, argv, opt)) {
      std::fprintf(stderr,
                   "usage: probft_client --servers host:port,... "
                   "[--requests N] [--client-id C] [--mode closed|open] "
                   "[--retry-ms R] [--timeout-ms T] [--force-retry 1]\n");
      return 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad argument: %s\n", e.what());
    return 2;
  }

  const std::uint64_t deadline = now_us() + opt.timeout_ms * 1000;

  // Dial every server (with retries — node processes may still be
  // binding their client ports).
  std::vector<ServerConn> servers(opt.servers.size());
  for (std::size_t i = 0; i < servers.size(); ++i) {
    while (servers[i].fd < 0 && now_us() < deadline) {
      servers[i].fd = dial(opt.servers[i].first, opt.servers[i].second);
      if (servers[i].fd < 0) ::usleep(100'000);
    }
  }
  if (servers[0].fd < 0) {
    std::fprintf(stderr, "cannot reach primary server\n");
    return 1;
  }

  const auto payload_for = [&opt](std::uint64_t seq) {
    return to_bytes("req-" + std::to_string(opt.client_id) + "-" +
                    std::to_string(seq));
  };
  const auto send_request = [&opt, &servers](std::size_t server,
                                             std::uint64_t seq,
                                             const Bytes& payload) {
    if (servers[server].fd < 0) return;
    net::ClientRequest request;
    request.client_id = opt.client_id;
    request.seq = seq;
    request.payload = payload;
    const Bytes body = request.encode();
    const Bytes frame = net::encode_frame(
        0, net::kClientRequestTag, ByteSpan(body.data(), body.size()));
    std::size_t off = 0;
    while (off < frame.size()) {
      const ssize_t wrote = ::send(servers[server].fd, frame.data() + off,
                                   frame.size() - off, MSG_NOSIGNAL);
      if (wrote <= 0) {
        ::close(servers[server].fd);
        servers[server].fd = -1;
        return;
      }
      off += static_cast<std::size_t>(wrote);
    }
  };

  const std::uint64_t n_requests = opt.requests;
  std::vector<bool> completed(n_requests + 1, false);
  std::vector<std::uint64_t> sent_at(n_requests + 1, 0);
  std::vector<std::uint64_t> latencies;
  std::uint64_t replies = 0, retries = 0, duplicates = 0;
  const std::uint64_t started = now_us();

  const auto drain_replies = [&](int wait_ms) {
    std::vector<pollfd> fds;
    std::vector<std::size_t> index;
    for (std::size_t i = 0; i < servers.size(); ++i) {
      if (servers[i].fd < 0) continue;
      fds.push_back(pollfd{servers[i].fd, POLLIN, 0});
      index.push_back(i);
    }
    if (fds.empty()) return;
    if (::poll(fds.data(), fds.size(), wait_ms) <= 0) return;
    std::uint8_t buf[64 * 1024];
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      ServerConn& conn = servers[index[k]];
      const ssize_t got = ::recv(conn.fd, buf, sizeof(buf), MSG_DONTWAIT);
      if (got <= 0) {
        if (got == 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) {
          ::close(conn.fd);
          conn.fd = -1;
        }
        continue;
      }
      conn.decoder.feed(ByteSpan(buf, static_cast<std::size_t>(got)));
      net::Frame frame;
      while (conn.decoder.next(frame) == net::FrameDecoder::Status::kFrame) {
        if (frame.tag != net::kClientReplyTag) continue;
        try {
          const auto reply = net::ClientReply::decode(
              ByteSpan(frame.payload.data(), frame.payload.size()));
          if (reply.client_id != opt.client_id || reply.seq == 0 ||
              reply.seq > n_requests) {
            continue;
          }
          if (completed[reply.seq]) {
            ++duplicates;
            continue;
          }
          completed[reply.seq] = true;
          ++replies;
          latencies.push_back(now_us() - sent_at[reply.seq]);
        } catch (const CodecError&) {
          // Hostile/garbled reply: ignore.
        }
      }
      if (conn.decoder.corrupted()) {
        ::close(conn.fd);
        conn.fd = -1;
      }
    }
  };

  const auto retry_incomplete = [&](std::uint64_t upto) {
    for (std::uint64_t seq = 1; seq <= upto; ++seq) {
      if (completed[seq]) continue;
      ++retries;
      for (std::size_t s = 0; s < servers.size(); ++s) {
        send_request(s, seq, payload_for(seq));
      }
    }
  };

  if (opt.open_loop) {
    for (std::uint64_t seq = 1; seq <= n_requests; ++seq) {
      sent_at[seq] = now_us();
      send_request(0, seq, payload_for(seq));
    }
    if (opt.force_retry) {
      ++retries;
      send_request(servers.size() > 1 ? 1 : 0, 1, payload_for(1));
    }
    std::uint64_t next_retry = now_us() + opt.retry_ms * 1000;
    while (replies < n_requests && now_us() < deadline) {
      drain_replies(/*wait_ms=*/20);
      if (now_us() >= next_retry) {
        retry_incomplete(n_requests);
        next_retry = now_us() + opt.retry_ms * 1000;
      }
    }
  } else {
    for (std::uint64_t seq = 1; seq <= n_requests && now_us() < deadline;
         ++seq) {
      sent_at[seq] = now_us();
      send_request(0, seq, payload_for(seq));
      if (seq == 1 && opt.force_retry) {
        ++retries;
        send_request(servers.size() > 1 ? 1 : 0, 1, payload_for(1));
      }
      std::uint64_t next_retry = now_us() + opt.retry_ms * 1000;
      while (!completed[seq] && now_us() < deadline) {
        drain_replies(/*wait_ms=*/20);
        if (now_us() >= next_retry) {
          retry_incomplete(seq);
          next_retry = now_us() + opt.retry_ms * 1000;
        }
      }
    }
  }
  const double wall_ms =
      static_cast<double>(now_us() - started) / 1000.0;

  const bool ok = replies == n_requests;
  std::printf("CLIENT %s requests=%llu replies=%llu retries=%llu "
              "duplicates=%llu wall_ms=%.1f\n",
              ok ? "ok" : "FAIL",
              static_cast<unsigned long long>(n_requests),
              static_cast<unsigned long long>(replies),
              static_cast<unsigned long long>(retries),
              static_cast<unsigned long long>(duplicates), wall_ms);
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    const auto quantile = [&latencies](double q) {
      const std::size_t idx = std::min(
          latencies.size() - 1,
          static_cast<std::size_t>(q * static_cast<double>(latencies.size())));
      return static_cast<unsigned long long>(latencies[idx]);
    };
    std::printf("LATENCY p50_us=%llu p90_us=%llu p99_us=%llu\n",
                quantile(0.50), quantile(0.90), quantile(0.99));
  }
  for (auto& conn : servers) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  return ok ? 0 : 1;
}
