// SMR client: submits requests to a probft_node cluster's client ports
// and measures end-to-end (submit → executed reply) latency.
//
//   ./probft_client --servers 127.0.0.1:9101,127.0.0.1:9102,...
//       [--requests N] [--client-id C] [--mode closed|open]
//       [--retry-ms R] [--timeout-ms T] [--force-retry 1]
//
// Requests are ClientRequest{client_id, seq, payload} frames
// (net/client.hpp over net/frame.hpp). The client targets the first
// server (the round-robin view-1 leader in a fresh cluster) and retries
// unanswered requests against every server after --retry-ms — duplicate
// submissions are safe because the SMR layer executes each (client, seq)
// at most once and re-answers executed retries from its reply cache.
// --force-retry deterministically sends the first request twice (the
// cluster harness uses it to assert exactly-once execution under client
// retries). A request counts as completed on its first reply; later
// replies for the same seq are counted as duplicates, not completions.
//
// Closed-loop mode keeps one request outstanding (latency-oriented);
// open-loop fires everything up front (throughput-oriented). Exit 0 iff
// every request got a reply. Summary lines:
//   CLIENT ok requests=N replies=N retries=R duplicates=D wall_ms=...
//   LATENCY p50_us=... p90_us=... p99_us=...
//
// --shards S enables client-side routing against a sharded cluster
// (probft_node --shards S): the client computes each payload's owning
// group through the same placement hash the replicas use and targets
// that group's view-1 leader (lead_replica(s, n)) instead of server 1 —
// --servers must then list every replica's client port in replica
// order. Per-shard accounting is printed in stable ascending shard
// order, one line per shard:
//   SHARD s=<s> requests=... replies=... retries=... p50_us=...
//
// --dtx D appends D cross-shard transactions after the ordinary
// requests: each is a "DTX1" request carrying one key per shard (keys
// are mined so placement scatters them across ALL S groups), sent to
// the coordinator shard's leader, and counts as completed when the
// cluster answers dtx-committed or dtx-aborted. Summary:
//   DTXCLIENT requests=D committed=C aborted=A
//
// --read-ratio R (0 ≤ R < 1, against probft_node --reads) interleaves
// reads so that reads make up fraction R of all operations: after each
// completed write the client accrues R/(1-R) of read debt (Bresenham —
// deterministic, no RNG) and issues one closed-loop read per whole unit,
// keyed by that write's own payload, so every read has a known expected
// value. --consistency picks the mode (linearizable | sequential |
// stale-ok); sequential reads carry min_index = the write's reply slot
// + 1, which is exactly the client's read-your-writes bound. A read is
// retried against the next server on an explicit kRejected/kRedirect
// reply or after --retry-ms of silence. In open-loop mode the reads
// trail the write burst (a read's key must have executed) but follow the
// same debt schedule. Summary line:
//   READS ok consistency=... attempted=A executed=E rejected=J
//       retries=T p50_us=...
//
// Replies carry an explicit status byte (client wire v2): a write
// answered kRejected/kRejected-redirect is NOT completed — it pulls the
// retry timer forward (floored at 100 ms so a rejecting server cannot
// make the client spin) and the request is re-sent to every server.
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/codec.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "shard/placement.hpp"

namespace {

using namespace probft;

struct Options {
  std::vector<std::pair<std::string, std::uint16_t>> servers;
  std::uint64_t requests = 16;
  std::uint64_t client_id = 77'001;
  bool open_loop = false;
  std::uint64_t retry_ms = 2'000;
  std::uint64_t timeout_ms = 30'000;
  bool force_retry = false;
  std::uint32_t shards = 1;  // > 1 = route by placement hash
  std::uint64_t dtx = 0;     // cross-shard transactions to append
  double read_ratio = 0.0;   // fraction of ops that are reads
  net::ReadConsistency consistency = net::ReadConsistency::kLinearizable;
};

const char* consistency_name(net::ReadConsistency mode) {
  switch (mode) {
    case net::ReadConsistency::kLinearizable:
      return "linearizable";
    case net::ReadConsistency::kSequential:
      return "sequential";
    case net::ReadConsistency::kStaleOk:
      return "stale-ok";
  }
  return "?";
}

std::uint64_t now_us() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1'000;
}

std::uint64_t parse_u64(const std::string& text) {
  if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0]))) {
    throw std::invalid_argument(text);
  }
  std::size_t consumed = 0;
  const std::uint64_t value = std::stoull(text, &consumed);
  if (consumed != text.size()) throw std::invalid_argument(text);
  return value;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (i + 1 >= argc) return false;
    const std::string value = argv[++i];
    if (key == "--servers") {
      std::size_t pos = 0;
      while (pos < value.size()) {
        const std::size_t comma = value.find(',', pos);
        const std::string entry = value.substr(pos, comma - pos);
        const std::size_t colon = entry.rfind(':');
        if (colon == std::string::npos || colon == 0) return false;
        opt.servers.emplace_back(
            entry.substr(0, colon),
            static_cast<std::uint16_t>(parse_u64(entry.substr(colon + 1))));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (key == "--requests") {
      opt.requests = parse_u64(value);
    } else if (key == "--client-id") {
      opt.client_id = parse_u64(value);
    } else if (key == "--mode") {
      if (value == "closed") {
        opt.open_loop = false;
      } else if (value == "open") {
        opt.open_loop = true;
      } else {
        return false;
      }
    } else if (key == "--retry-ms") {
      opt.retry_ms = parse_u64(value);
    } else if (key == "--timeout-ms") {
      opt.timeout_ms = parse_u64(value);
    } else if (key == "--force-retry") {
      opt.force_retry = value == "1" || value == "true";
    } else if (key == "--shards") {
      const std::uint64_t shards = parse_u64(value);
      if (shards < 1 || shards > probft::shard::kMaxShards) return false;
      opt.shards = static_cast<std::uint32_t>(shards);
    } else if (key == "--dtx") {
      opt.dtx = parse_u64(value);
    } else if (key == "--read-ratio") {
      std::size_t consumed = 0;
      const double ratio = std::stod(value, &consumed);
      if (consumed != value.size() || ratio < 0.0 || ratio >= 1.0) {
        return false;
      }
      opt.read_ratio = ratio;
    } else if (key == "--consistency") {
      if (value == "linearizable") {
        opt.consistency = net::ReadConsistency::kLinearizable;
      } else if (value == "sequential") {
        opt.consistency = net::ReadConsistency::kSequential;
      } else if (value == "stale-ok") {
        opt.consistency = net::ReadConsistency::kStaleOk;
      } else {
        return false;
      }
    } else {
      return false;
    }
  }
  return !opt.servers.empty() && opt.requests + opt.dtx >= 1;
}

/// One connection per server; a dead connection stays closed (fd < 0) and
/// its server simply never answers — retries cover the rest.
struct ServerConn {
  int fd = -1;
  net::FrameDecoder decoder;
};

int dial(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* result = nullptr;
  if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &result) != 0 ||
      result == nullptr) {
    return -1;
  }
  int fd = ::socket(result->ai_family, SOCK_STREAM, 0);
  if (fd >= 0 &&
      ::connect(fd, result->ai_addr, result->ai_addrlen) != 0) {
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd >= 0) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    if (!parse_args(argc, argv, opt)) {
      std::fprintf(stderr,
                   "usage: probft_client --servers host:port,... "
                   "[--requests N] [--client-id C] [--mode closed|open] "
                   "[--retry-ms R] [--timeout-ms T] [--force-retry 1] "
                   "[--shards S] [--dtx D] [--read-ratio R] "
                   "[--consistency linearizable|sequential|stale-ok]\n");
      return 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad argument: %s\n", e.what());
    return 2;
  }

  const std::uint64_t deadline = now_us() + opt.timeout_ms * 1000;

  // Dial every server (with retries — node processes may still be
  // binding their client ports).
  std::vector<ServerConn> servers(opt.servers.size());
  for (std::size_t i = 0; i < servers.size(); ++i) {
    while (servers[i].fd < 0 && now_us() < deadline) {
      servers[i].fd = dial(opt.servers[i].first, opt.servers[i].second);
      if (servers[i].fd < 0) ::usleep(100'000);
    }
  }
  if (servers[0].fd < 0) {
    std::fprintf(stderr, "cannot reach primary server\n");
    return 1;
  }

  // Per-seq payload / routing tables. Ordinary requests (1..requests)
  // hash to their owning shard via the placement layer; seqs past that
  // are cross-shard dtx requests carrying one mined key per shard, sent
  // to their coordinator shard's leader. With --shards 1 every primary
  // is server 0 (the historical single-group behavior).
  const std::uint64_t n_requests = opt.requests;
  const std::uint64_t total = opt.requests + opt.dtx;
  const auto n_replicas = static_cast<std::uint32_t>(servers.size());
  shard::ShardMap map;
  map.shard_count = opt.shards;
  const auto span = [](const Bytes& b) {
    return ByteSpan(b.data(), b.size());
  };
  std::vector<Bytes> payloads(total + 1);
  std::vector<shard::ShardId> shard_for(total + 1, 0);
  std::vector<std::size_t> primary(total + 1, 0);
  for (std::uint64_t seq = 1; seq <= n_requests; ++seq) {
    payloads[seq] = to_bytes("req-" + std::to_string(opt.client_id) + "-" +
                             std::to_string(seq));
    if (opt.shards > 1) {
      shard_for[seq] = shard::shard_of(map, span(payloads[seq]));
      primary[seq] = shard::lead_replica(shard_for[seq], n_replicas) - 1;
    }
  }
  for (std::uint64_t j = 0; j < opt.dtx; ++j) {
    const std::uint64_t seq = n_requests + 1 + j;
    // One key per shard, mined by nonce, so every group participates and
    // the transaction is genuinely cross-shard.
    std::vector<Bytes> keys;
    for (shard::ShardId s = 0; s < opt.shards; ++s) {
      for (std::uint64_t nonce = 0;; ++nonce) {
        Bytes key = to_bytes("dtx-" + std::to_string(opt.client_id) + "-" +
                             std::to_string(j) + "-" + std::to_string(nonce));
        if (shard::shard_of(map, span(key)) == s) {
          keys.push_back(std::move(key));
          break;
        }
      }
    }
    Writer w;
    w.raw(ByteSpan(reinterpret_cast<const std::uint8_t*>("DTX1"), 4));
    w.vec(keys, [](Writer& wr, const Bytes& key) {
      wr.bytes(ByteSpan(key.data(), key.size()));
    });
    shard_for[seq] = shard::shard_of(map, span(keys.front()));
    if (opt.shards > 1) {
      primary[seq] = shard::lead_replica(shard_for[seq], n_replicas) - 1;
    }
    payloads[seq] = std::move(w).take();
  }

  const auto send_frame = [&servers](std::size_t server, std::uint8_t tag,
                                     const Bytes& body) {
    if (servers[server].fd < 0) return;
    const Bytes frame =
        net::encode_frame(0, tag, ByteSpan(body.data(), body.size()));
    std::size_t off = 0;
    while (off < frame.size()) {
      const ssize_t wrote = ::send(servers[server].fd, frame.data() + off,
                                   frame.size() - off, MSG_NOSIGNAL);
      if (wrote <= 0) {
        ::close(servers[server].fd);
        servers[server].fd = -1;
        return;
      }
      off += static_cast<std::size_t>(wrote);
    }
  };
  const auto send_request = [&opt, &send_frame](std::size_t server,
                                                std::uint64_t seq,
                                                const Bytes& payload) {
    net::ClientRequest request;
    request.client_id = opt.client_id;
    request.seq = seq;
    request.payload = payload;
    send_frame(server, net::kClientRequestTag, request.encode());
  };
  const auto send_read = [&opt, &send_frame](std::size_t server,
                                             std::uint64_t read_id,
                                             const Bytes& key,
                                             std::uint64_t min_index) {
    net::ReadRequest request;
    request.client_id = opt.client_id;
    request.read_id = read_id;
    request.consistency = opt.consistency;
    request.min_index = min_index;
    request.key = key;
    send_frame(server, net::kClientReadTag, request.encode());
  };

  std::vector<bool> completed(total + 1, false);
  std::vector<std::uint64_t> sent_at(total + 1, 0);
  // Reply slot of each completed write — the read path's min_index bound
  // for sequential (read-your-writes) reads is slot + 1.
  std::vector<std::uint64_t> write_slot(total + 1, 0);
  std::vector<std::uint64_t> latencies;
  std::uint64_t replies = 0, retries = 0, duplicates = 0;
  std::uint64_t dtx_committed = 0, dtx_aborted = 0;
  // An explicit kRejected/kRedirect write reply pulls the retry timer
  // forward instead of waiting out --retry-ms; earliest_retry floors the
  // hinted retries at 100 ms so a rejecting server cannot spin the client.
  bool retry_hint = false;
  std::uint64_t earliest_retry = 0;
  // In-flight read state (reads are closed-loop: at most one pending).
  std::uint64_t reads_attempted = 0, reads_ok = 0, reads_rejected = 0,
                reads_stale = 0, read_retries = 0, next_read_id = 0;
  std::uint64_t pending_read_id = 0, read_sent_at = 0;
  const Bytes* pending_read_expect = nullptr;
  bool pending_read_done = false, pending_read_bounced = false;
  std::vector<std::uint64_t> read_latencies;
  double read_debt = 0.0;
  struct ShardStats {
    std::uint64_t requests = 0, replies = 0, retries = 0;
    std::vector<std::uint64_t> latencies;
  };
  std::vector<ShardStats> per_shard(opt.shards);
  const std::uint64_t started = now_us();

  const auto drain_replies = [&](int wait_ms) {
    std::vector<pollfd> fds;
    std::vector<std::size_t> index;
    for (std::size_t i = 0; i < servers.size(); ++i) {
      if (servers[i].fd < 0) continue;
      fds.push_back(pollfd{servers[i].fd, POLLIN, 0});
      index.push_back(i);
    }
    if (fds.empty()) return;
    if (::poll(fds.data(), fds.size(), wait_ms) <= 0) return;
    std::uint8_t buf[64 * 1024];
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      ServerConn& conn = servers[index[k]];
      const ssize_t got = ::recv(conn.fd, buf, sizeof(buf), MSG_DONTWAIT);
      if (got <= 0) {
        if (got == 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) {
          ::close(conn.fd);
          conn.fd = -1;
        }
        continue;
      }
      conn.decoder.feed(ByteSpan(buf, static_cast<std::size_t>(got)));
      net::Frame frame;
      while (conn.decoder.next(frame) == net::FrameDecoder::Status::kFrame) {
        if (frame.tag == net::kClientReadReplyTag) {
          try {
            const auto reply = net::ReadReply::decode(
                ByteSpan(frame.payload.data(), frame.payload.size()));
            if (reply.client_id != opt.client_id ||
                reply.read_id != pending_read_id || pending_read_done) {
              continue;
            }
            if (reply.status == net::ReplyStatus::kExecuted) {
              pending_read_done = true;
              // Each key is written exactly once with value == key, so a
              // non-stale executed answer must echo the expected bytes.
              if (pending_read_expect != nullptr &&
                  reply.value != *pending_read_expect) {
                ++reads_stale;
              } else {
                ++reads_ok;
                read_latencies.push_back(now_us() - read_sent_at);
              }
            } else {
              // Explicit refusal (no lease / no quorum / wrong shard):
              // bounce to the next server right away.
              ++reads_rejected;
              pending_read_bounced = true;
            }
          } catch (const CodecError&) {
            // Hostile/garbled read reply: ignore.
          }
          continue;
        }
        if (frame.tag != net::kClientReplyTag) continue;
        try {
          const auto reply = net::ClientReply::decode(
              ByteSpan(frame.payload.data(), frame.payload.size()));
          if (reply.client_id != opt.client_id || reply.seq == 0 ||
              reply.seq > total) {
            continue;
          }
          if (completed[reply.seq]) {
            ++duplicates;
            continue;
          }
          if (reply.status != net::ReplyStatus::kExecuted) {
            // Backpressure or redirect: the request did NOT execute.
            // Leave it incomplete and hint the retry loop.
            retry_hint = true;
            continue;
          }
          completed[reply.seq] = true;
          write_slot[reply.seq] = reply.slot;
          ++replies;
          const std::uint64_t latency = now_us() - sent_at[reply.seq];
          latencies.push_back(latency);
          ShardStats& shard_stats = per_shard[shard_for[reply.seq]];
          ++shard_stats.replies;
          shard_stats.latencies.push_back(latency);
          if (reply.seq > n_requests) {
            const std::string outcome(reply.result.begin(),
                                      reply.result.end());
            if (outcome == "dtx-committed") {
              ++dtx_committed;
            } else {
              ++dtx_aborted;
            }
          }
        } catch (const CodecError&) {
          // Hostile/garbled reply: ignore.
        }
      }
      if (conn.decoder.corrupted()) {
        ::close(conn.fd);
        conn.fd = -1;
      }
    }
  };

  const auto retry_incomplete = [&](std::uint64_t upto) {
    for (std::uint64_t seq = 1; seq <= upto; ++seq) {
      if (completed[seq]) continue;
      ++retries;
      ++per_shard[shard_for[seq]].retries;
      for (std::size_t s = 0; s < servers.size(); ++s) {
        send_request(s, seq, payloads[seq]);
      }
    }
  };
  const auto first_send = [&](std::uint64_t seq) {
    sent_at[seq] = now_us();
    ++per_shard[shard_for[seq]].requests;
    send_request(primary[seq], seq, payloads[seq]);
  };

  // One closed-loop read keyed by completed write `seq` — its payload is
  // the key and its own bytes are the expected value, so any server that
  // answers with something else would be visibly stale. Starts at the
  // write's primary (the lease holder for linearizable reads in a fresh
  // cluster) and rotates to the next server on an explicit rejection or
  // after --retry-ms of silence.
  const auto run_read = [&](std::uint64_t seq) {
    const std::uint64_t read_id = ++next_read_id;
    const std::uint64_t min_index =
        write_slot[seq] > 0 ? write_slot[seq] + 1 : 0;
    pending_read_id = read_id;
    // stale-ok explicitly tolerates old views, so only the two
    // consistent modes assert the expected value.
    pending_read_expect =
        opt.consistency == net::ReadConsistency::kStaleOk ? nullptr
                                                          : &payloads[seq];
    pending_read_done = false;
    pending_read_bounced = false;
    ++reads_attempted;
    std::size_t target = primary[seq];
    read_sent_at = now_us();
    send_read(target, read_id, payloads[seq], min_index);
    std::uint64_t next_retry = now_us() + opt.retry_ms * 1000;
    while (!pending_read_done && now_us() < deadline) {
      drain_replies(/*wait_ms=*/5);
      if (pending_read_bounced || now_us() >= next_retry) {
        pending_read_bounced = false;
        target = (target + 1) % servers.size();
        ++read_retries;
        send_read(target, read_id, payloads[seq], min_index);
        next_retry = now_us() + opt.retry_ms * 1000;
      }
    }
  };
  // Bresenham read schedule: each completed write accrues R/(1-R) of
  // read debt; whole units become reads keyed by that write.
  const auto reads_after_write = [&](std::uint64_t seq) {
    if (opt.read_ratio <= 0.0 || seq > n_requests) return;
    read_debt += opt.read_ratio / (1.0 - opt.read_ratio);
    while (read_debt >= 1.0 && now_us() < deadline) {
      read_debt -= 1.0;
      run_read(seq);
    }
  };

  if (opt.open_loop) {
    for (std::uint64_t seq = 1; seq <= total; ++seq) first_send(seq);
    if (opt.force_retry) {
      ++retries;
      ++per_shard[shard_for[1]].retries;
      send_request(servers.size() > 1 ? (primary[1] + 1) % servers.size() : 0,
                   1, payloads[1]);
    }
    std::uint64_t next_retry = now_us() + opt.retry_ms * 1000;
    while (replies < total && now_us() < deadline) {
      drain_replies(/*wait_ms=*/20);
      if ((retry_hint && now_us() >= earliest_retry) ||
          now_us() >= next_retry) {
        retry_hint = false;
        earliest_retry = now_us() + 100'000;
        retry_incomplete(total);
        next_retry = now_us() + opt.retry_ms * 1000;
      }
    }
    // Open loop cannot interleave (a read's key must have executed), so
    // the read schedule trails the whole burst.
    for (std::uint64_t seq = 1; seq <= n_requests; ++seq) {
      if (completed[seq]) reads_after_write(seq);
    }
  } else {
    for (std::uint64_t seq = 1; seq <= total && now_us() < deadline; ++seq) {
      first_send(seq);
      if (seq == 1 && opt.force_retry) {
        ++retries;
        ++per_shard[shard_for[1]].retries;
        send_request(
            servers.size() > 1 ? (primary[1] + 1) % servers.size() : 0, 1,
            payloads[1]);
      }
      std::uint64_t next_retry = now_us() + opt.retry_ms * 1000;
      while (!completed[seq] && now_us() < deadline) {
        drain_replies(/*wait_ms=*/20);
        if ((retry_hint && now_us() >= earliest_retry) ||
            now_us() >= next_retry) {
          retry_hint = false;
          earliest_retry = now_us() + 100'000;
          retry_incomplete(seq);
          next_retry = now_us() + opt.retry_ms * 1000;
        }
      }
      if (completed[seq]) reads_after_write(seq);
    }
  }
  const double wall_ms =
      static_cast<double>(now_us() - started) / 1000.0;

  const bool ok = replies == total && reads_ok == reads_attempted;
  std::printf("CLIENT %s requests=%llu replies=%llu retries=%llu "
              "duplicates=%llu wall_ms=%.1f\n",
              ok ? "ok" : "FAIL",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(replies),
              static_cast<unsigned long long>(retries),
              static_cast<unsigned long long>(duplicates), wall_ms);
  const auto quantile_of = [](std::vector<std::uint64_t>& sorted, double q) {
    if (sorted.empty()) return 0ULL;
    const std::size_t idx = std::min(
        sorted.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
    return static_cast<unsigned long long>(sorted[idx]);
  };
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    std::printf("LATENCY p50_us=%llu p90_us=%llu p99_us=%llu\n",
                quantile_of(latencies, 0.50), quantile_of(latencies, 0.90),
                quantile_of(latencies, 0.99));
  }
  if (opt.shards > 1) {
    // Stable ascending shard order, one line per shard (empty included),
    // so harnesses can diff runs textually.
    for (std::uint32_t s = 0; s < opt.shards; ++s) {
      ShardStats& shard_stats = per_shard[s];
      std::sort(shard_stats.latencies.begin(), shard_stats.latencies.end());
      std::printf("SHARD s=%u requests=%llu replies=%llu retries=%llu "
                  "p50_us=%llu\n",
                  s, static_cast<unsigned long long>(shard_stats.requests),
                  static_cast<unsigned long long>(shard_stats.replies),
                  static_cast<unsigned long long>(shard_stats.retries),
                  quantile_of(shard_stats.latencies, 0.50));
    }
  }
  if (opt.read_ratio > 0.0) {
    std::sort(read_latencies.begin(), read_latencies.end());
    std::printf("READS %s consistency=%s attempted=%llu executed=%llu "
                "stale=%llu rejected=%llu retries=%llu p50_us=%llu\n",
                reads_ok == reads_attempted ? "ok" : "FAIL",
                consistency_name(opt.consistency),
                static_cast<unsigned long long>(reads_attempted),
                static_cast<unsigned long long>(reads_ok),
                static_cast<unsigned long long>(reads_stale),
                static_cast<unsigned long long>(reads_rejected),
                static_cast<unsigned long long>(read_retries),
                quantile_of(read_latencies, 0.50));
  }
  if (opt.dtx > 0) {
    std::printf("DTXCLIENT requests=%llu committed=%llu aborted=%llu\n",
                static_cast<unsigned long long>(opt.dtx),
                static_cast<unsigned long long>(dtx_committed),
                static_cast<unsigned long long>(dtx_aborted));
  }
  for (auto& conn : servers) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  return ok ? 0 : 1;
}
