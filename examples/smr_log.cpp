// Replicated log using the SMR module (src/smr) — in contrast to kv_smr,
// which spins up a fresh cluster per slot, this example runs a single
// long-lived fleet of SmrReplicas over one network: a window of slots
// runs concurrently, commands ride in batches, and slots only open when
// there is demand (no no-op filler).
//
//   $ ./examples/smr_log [n] [commands]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "smr/smr_replica.hpp"

int main(int argc, char** argv) {
  using namespace probft;

  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 8;
  const std::uint64_t commands =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 6;

  net::Simulator sim;
  net::LatencyConfig latency;
  latency.min_delay = 1'000;
  latency.max_delay_post = 6'000;
  net::Network network(sim, n, /*seed=*/2024, latency);
  const auto suite = crypto::make_sim_suite();

  std::vector<crypto::KeyPair> keys(n + 1);
  std::vector<Bytes> key_table(n + 1);
  for (ReplicaId id = 1; id <= n; ++id) {
    keys[id] = suite->keygen(mix64(2024, id));
    key_table[id] = keys[id].public_key;
  }
  const crypto::PublicKeyDir public_keys(std::move(key_table));

  std::vector<std::unique_ptr<smr::SmrReplica>> replicas(n + 1);
  for (ReplicaId id = 1; id <= n; ++id) {
    smr::SmrConfig cfg;
    cfg.id = id;
    cfg.n = n;
    cfg.f = 0;
    cfg.pipeline.window = 4;
    cfg.pipeline.batch_max_commands = 2;
    cfg.suite = suite.get();
    cfg.secret_key = keys[id].secret_key;
    cfg.public_keys = public_keys;
    core::ProtocolHost hooks;
    hooks.send = [&network, id](ReplicaId to, std::uint8_t tag,
                                const Bytes& m) {
      network.send(id, to, tag, m);
    };
    hooks.broadcast = [&network, id](std::uint8_t tag, const Bytes& m) {
      network.broadcast(id, tag, m);
    };
    hooks.set_timer = [&sim](Duration d, std::function<void()> fn) {
      sim.schedule_after(d, std::move(fn));
    };
    hooks.on_commit = [id](std::uint64_t index, const Bytes& command) {
      if (id == 1) {  // narrate once
        std::printf("  command %2llu executed: %s\n",
                    static_cast<unsigned long long>(index),
                    std::string(command.begin(), command.end()).c_str());
      }
    };
    replicas[id] = std::make_unique<smr::SmrReplica>(std::move(cfg), hooks);
    network.register_handler(
        id, [&replicas, id](ReplicaId from, std::uint8_t tag, const Bytes& m) {
          replicas[id]->on_message(from, tag, m);
        });
  }

  // All commands are submitted at replica 1 (the round-robin leader of
  // every slot's first view), like a client talking to the current leader.
  std::printf("submitting %llu commands to an %u-replica ProBFT-SMR fleet\n",
              static_cast<unsigned long long>(commands), n);
  for (std::uint64_t i = 0; i < commands; ++i) {
    replicas[1]->submit(to_bytes("op-" + std::to_string(i)));
  }
  for (ReplicaId id = 1; id <= n; ++id) replicas[id]->start();

  // Run until every replica executed every submitted command.
  while (sim.now() < 120'000'000) {
    bool all_done = true;
    for (ReplicaId id = 1; id <= n; ++id) {
      if (replicas[id]->executed_commands() < commands) {
        all_done = false;
        break;
      }
    }
    if (all_done || !sim.step()) break;
  }

  std::printf("\nlogs after %.1f ms of simulated time:\n",
              static_cast<double>(sim.now()) / 1000.0);
  bool identical = true;
  for (ReplicaId id = 1; id <= n; ++id) {
    std::printf("  replica %2u: %llu commands in %llu slots\n", id,
                static_cast<unsigned long long>(
                    replicas[id]->executed_commands()),
                static_cast<unsigned long long>(
                    replicas[id]->committed_slots()));
    if (replicas[id]->log() != replicas[1]->log()) identical = false;
  }
  std::printf("\nall logs identical: %s\n", identical ? "yes" : "NO (BUG)");
  std::printf("total wire messages for %llu slots: %llu\n",
              static_cast<unsigned long long>(replicas[1]->committed_slots()),
              static_cast<unsigned long long>(network.stats().sends));
  return identical ? 0 : 1;
}
