// Protocol comparison: ProBFT vs PBFT vs HotStuff on identical workloads.
//
//   $ ./examples/protocol_comparison [n]
//
// Runs the three protocols on the same simulated cluster (same seed, same
// latency model) and prints messages, bytes, and decision latency — the
// trade-off triangle of paper Figure 1: ProBFT keeps PBFT's 3-step latency
// at a fraction of its messages; HotStuff has the fewest messages but more
// steps (higher latency).
#include <cstdio>
#include <cstdlib>

#include "sim/cluster.hpp"

namespace {

struct Row {
  const char* name;
  bool decided;
  std::uint64_t messages;
  std::uint64_t bytes;
  double last_decision_ms;
};

Row run(probft::sim::Protocol protocol, const char* name, std::uint32_t n) {
  using namespace probft;
  sim::ClusterConfig cfg;
  cfg.protocol = protocol;
  cfg.n = n;
  cfg.f = 0;
  cfg.seed = 99;
  cfg.latency.min_delay = 1'000;
  cfg.latency.max_delay_post = 8'000;
  sim::Cluster cluster(cfg);
  cluster.start();
  Row row;
  row.name = name;
  row.decided = cluster.run_to_completion();
  row.messages = cluster.network().stats().sends;
  row.bytes = cluster.network().stats().bytes_sent;
  TimePoint last = 0;
  for (const auto& d : cluster.decisions()) last = std::max(last, d.at);
  row.last_decision_ms = static_cast<double>(last) / 1000.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 50;

  std::printf("Comparing protocols at n=%u (same seed & latency model; "
              "1-8 ms per hop)\n\n", n);
  std::printf("%-10s %-9s %-12s %-14s %-18s\n", "protocol", "decided",
              "messages", "bytes", "all-decided (ms)");

  const Row rows[] = {
      run(probft::sim::Protocol::kProbft, "ProBFT", n),
      run(probft::sim::Protocol::kPbft, "PBFT", n),
      run(probft::sim::Protocol::kHotStuff, "HotStuff", n),
  };
  for (const Row& r : rows) {
    std::printf("%-10s %-9s %-12llu %-14llu %-18.3f\n", r.name,
                r.decided ? "yes" : "NO",
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.bytes),
                r.last_decision_ms);
  }

  std::printf(
      "\nreading the table (paper Fig. 1): ProBFT ~= PBFT latency (both are\n"
      "3-step protocols) with far fewer messages; HotStuff sends the fewest\n"
      "messages but pays extra communication steps, so it finishes last.\n");
  return 0;
}
