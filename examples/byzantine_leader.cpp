// Byzantine-leader demo: the Figure 4c "optimal split" equivocation attack.
//
//   $ ./examples/byzantine_leader [seed]
//
// Replica 1 (leader of view 1) is Byzantine and sends value A to half of
// the correct replicas and value B to the other half; Byzantine followers
// collude by supporting each value only toward its own partition. The demo
// shows ProBFT's two defenses:
//   1. equivocation detection: replicas whose VRF samples cross the
//      partition receive both leader-signed values, block the view and
//      gossip the evidence;
//   2. view change: the synchronizer moves everyone to view 2, whose
//      correct leader finishes the consensus — with agreement intact.
#include <cstdio>
#include <cstdlib>

#include "sim/cluster.hpp"

int main(int argc, char** argv) {
  using namespace probft;

  const std::uint64_t seed =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 7;

  sim::ClusterConfig cfg;
  cfg.protocol = sim::Protocol::kProbft;
  cfg.n = 16;
  cfg.f = 5;
  cfg.l = 1.5;
  cfg.seed = seed;
  cfg.split = sim::SplitStrategy::kOptimal;
  cfg.attack_value_a = to_bytes("EVIL-VALUE-A");
  cfg.attack_value_b = to_bytes("EVIL-VALUE-B");
  cfg.behaviors.assign(cfg.n, sim::Behavior::kHonest);
  cfg.behaviors[0] = sim::Behavior::kEquivocateLeader;   // replica 1
  for (int i = 1; i < 5; ++i) {
    cfg.behaviors[i] = sim::Behavior::kColludeFollower;  // replicas 2..5
  }

  std::printf("Fig. 4c attack: n=%u, %u Byzantine (equivocating leader +"
              " colluders)\n", cfg.n, cfg.f);

  sim::Cluster cluster(cfg);
  cluster.start();

  // Snapshot after the first view window: who blocked?
  cluster.simulator().run_until(50'000);
  int blocked = 0;
  for (ReplicaId id = 6; id <= cfg.n; ++id) {
    const auto* replica = cluster.probft(id);
    if (replica != nullptr && replica->view_blocked()) ++blocked;
  }
  std::printf("\nafter 50 ms (still view 1): %d of %u correct replicas "
              "detected the equivocation and blocked the view\n",
              blocked, cfg.n - cfg.f);

  const bool done = cluster.run_to_completion(/*deadline=*/120'000'000);
  std::printf("\nconsensus finished: %s\n", done ? "yes" : "NO");
  std::printf("agreement: %s\n", cluster.agreement_ok() ? "ok" : "VIOLATED");

  for (const auto& d : cluster.decisions()) {
    const std::string value(d.value.begin(), d.value.end());
    std::printf("  replica %2u decided \"%s\" in view %llu\n", d.replica,
                value.c_str(), static_cast<unsigned long long>(d.view));
  }

  const auto values = cluster.decided_values();
  if (values.size() == 1) {
    const std::string value(values.begin()->begin(), values.begin()->end());
    std::printf("\nall correct replicas agreed on \"%s\"", value.c_str());
    std::printf(value.rfind("EVIL", 0) == 0
                    ? " (one attack value won — but consistently!)\n"
                    : " (a correct replica's value from a later view)\n");
  }
  return cluster.agreement_ok() ? 0 : 1;
}
