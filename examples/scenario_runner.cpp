// Scenario runner: a small CLI over the declarative scenario harness
// (src/sim/scenario.hpp).
//
//   $ ./examples/scenario_runner --protocol probft --n 64 --f 10
//         --o 1.7 --l 2.0 --seeds 1,2,3 --fault silent-leader
//
// Faults:    happy | silent-leader | silent-f | equivocate | flood |
//            partition
// Latency:   synchronous | partial-synchrony | lossy-duplicating
//
// `--matrix` ignores --protocol/--fault and sweeps every applicable
// (protocol, fault) pair instead — the same cross-product the conformance
// test asserts on, handy for eyeballing new configurations.
//
// Prints one machine-readable RESULT line per (scenario, seed), so
// parameter sweeps beyond the bundled benches stay scriptable.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/scenario.hpp"

namespace {

using namespace probft;

struct Options {
  sim::ScenarioSpec spec = sim::conformance_base_spec();
  bool matrix = false;
};

void usage() {
  std::fprintf(stderr,
               "usage: scenario_runner [--protocol probft|pbft|hotstuff]\n"
               "                       [--n N] [--f F] [--o O] [--l L]\n"
               "                       [--seeds S1,S2,...] [--deadline-ms MS]\n"
               "                       [--fault happy|silent-leader|silent-f|"
               "equivocate|flood|partition]\n"
               "                       [--latency synchronous|"
               "partial-synchrony|lossy-duplicating]\n"
               "                       [--matrix]\n");
}

/// Strict full-string numeric parses: trailing garbage ("16abc") and
/// negative values must fail, not silently run the wrong experiment.
std::uint64_t parse_u64(const std::string& text) {
  // Leading whitespace would let stoull skip to a sign and wrap negatives.
  if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0]))) {
    throw std::invalid_argument(text);
  }
  std::size_t consumed = 0;
  const std::uint64_t value = std::stoull(text, &consumed);
  if (consumed != text.size()) throw std::invalid_argument(text);
  return value;
}

/// The o/l factors must be positive, finite and sane — NaN or a negative
/// factor would silently run a nonsense experiment.
double parse_factor(const std::string& text) {
  std::size_t consumed = 0;
  const double value = std::stod(text, &consumed);
  if (consumed != text.size() || !std::isfinite(value) || value <= 0.0 ||
      value > 100.0) {
    throw std::invalid_argument(text);
  }
  return value;
}

std::vector<std::uint64_t> parse_seeds(const std::string& csv) {
  std::vector<std::uint64_t> seeds;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string item = csv.substr(pos, comma - pos);  // npos clamps
    seeds.push_back(parse_u64(item));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return seeds;
}

bool parse_args(int argc, char** argv, Options& opt);

/// Numeric flag values come from the command line; malformed ones must
/// produce the usage text, not std::terminate.
bool parse(int argc, char** argv, Options& opt) {
  try {
    return parse_args(argc, argv, opt);
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--matrix") {
      opt.matrix = true;
      continue;
    }
    if (i + 1 >= argc) return false;
    const std::string value = argv[++i];
    if (key == "--protocol") {
      if (!sim::protocol_from_string(value, opt.spec.protocol)) return false;
    } else if (key == "--fault" || key == "--scenario") {
      if (!sim::fault_from_string(value, opt.spec.fault)) return false;
    } else if (key == "--latency") {
      if (value == "synchronous") {
        opt.spec.latency = sim::LatencyModel::kSynchronous;
      } else if (value == "partial-synchrony") {
        opt.spec.latency = sim::LatencyModel::kPartialSynchrony;
      } else if (value == "lossy-duplicating") {
        opt.spec.latency = sim::LatencyModel::kLossyDuplicating;
      } else {
        return false;
      }
    } else if (key == "--n") {
      const std::uint64_t n = parse_u64(value);
      if (n < 1 || n > 1'000'000) return false;
      opt.spec.n = static_cast<std::uint32_t>(n);
    } else if (key == "--f") {
      const std::uint64_t f = parse_u64(value);
      if (f > 1'000'000) return false;
      opt.spec.f = static_cast<std::uint32_t>(f);
    } else if (key == "--o") {
      opt.spec.o = parse_factor(value);
    } else if (key == "--l") {
      opt.spec.l = parse_factor(value);
    } else if (key == "--seed" || key == "--seeds") {
      opt.spec.seeds = parse_seeds(value);
      if (opt.spec.seeds.empty()) return false;
    } else if (key == "--deadline-ms") {
      const std::uint64_t ms = parse_u64(value);
      if (ms > std::numeric_limits<std::uint64_t>::max() / 1000) return false;
      opt.spec.deadline = ms * 1000;
    } else {
      return false;
    }
  }
  return true;
}

void print_result(const sim::ScenarioSpec& spec,
                  const sim::ScenarioOutcome& outcome) {
  std::printf(
      "RESULT scenario=%s o=%.2f l=%.2f seed=%llu decided=%zu/%zu "
      "terminated=%d agreement=%d messages=%llu bytes=%llu "
      "last_decision_us=%llu max_view=%llu\n",
      sim::scenario_name(spec).c_str(), spec.o, spec.l,
      static_cast<unsigned long long>(outcome.seed), outcome.decided,
      outcome.correct, outcome.terminated ? 1 : 0, outcome.agreement ? 1 : 0,
      static_cast<unsigned long long>(outcome.messages),
      static_cast<unsigned long long>(outcome.bytes),
      static_cast<unsigned long long>(outcome.last_decision_at),
      static_cast<unsigned long long>(outcome.max_view));
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage();
    return 2;
  }

  std::vector<sim::ScenarioSpec> specs;
  if (opt.matrix) {
    specs = sim::expand_matrix(sim::all_protocols(), sim::all_faults(),
                               opt.spec.seeds, opt.spec);
  } else {
    if (!sim::fault_applicable(opt.spec)) {
      std::fprintf(stderr, "fault %s not applicable to %s (need f >= 1?)\n",
                   sim::to_string(opt.spec.fault),
                   sim::to_string(opt.spec.protocol));
      return 2;
    }
    opt.spec.expect_termination =
        sim::fault_expects_termination(opt.spec.fault);
    specs.push_back(opt.spec);
  }

  bool safe = true;
  bool live = true;
  for (const auto& result : sim::run_matrix(specs)) {
    for (const auto& outcome : result.outcomes) {
      print_result(result.spec, outcome);
      safe = safe && outcome.agreement;
      if (result.spec.expect_termination) {
        live = live && outcome.terminated;
      }
    }
  }

  if (!safe) std::fprintf(stderr, "AGREEMENT VIOLATED\n");
  if (!live) std::fprintf(stderr, "termination expectation missed\n");
  return safe && live ? 0 : 1;
}
