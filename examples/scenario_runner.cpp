// Scenario runner: a small CLI over the declarative scenario harness
// (src/sim/scenario.hpp) and the parallel Monte-Carlo sweep engine
// (src/sim/sweep.hpp).
//
//   $ ./examples/scenario_runner --protocol probft --n 64 --f 10
//         --o 1.7 --l 2.0 --seeds 1,2,3 --fault silent-leader
//   $ ./examples/scenario_runner --matrix --jobs 8 --budget-seconds 60
//         --n 500 --f 50 --seeds 1,2,3,4 --json sweep.json
//
// Faults:    happy | silent-leader | silent-f | equivocate | flood |
//            partition | churn | asym-partition | reorder
// Latency:   synchronous | partial-synchrony | lossy-duplicating
//
// `--matrix` ignores --protocol/--fault and sweeps every applicable
// (protocol, fault) pair instead — the same cross-product the conformance
// test asserts on. `--protocols` / `--faults` narrow the matrix to a
// comma-separated subset (e.g. `--protocols probft` for large-n sweeps
// where the O(n²)-message baselines are too slow).
//
// All modes run on the sweep engine: `--jobs N` shards (spec × seed) work
// items across N worker threads (0 = all cores), `--budget-seconds S`
// stops scheduling new seeds once S wall-clock seconds elapsed (completed
// runs are reported either way), and `--json FILE` writes the aggregate
// stats report. Per-run RESULT lines print in deterministic (spec, seed)
// order after the sweep finishes, so output is stable under any --jobs.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "shard/placement.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep.hpp"
#include "sim/tcp_runner.hpp"

namespace {

using namespace probft;

struct Options {
  sim::ScenarioSpec spec = sim::conformance_base_spec();
  sim::SweepConfig sweep;
  bool matrix = false;
  bool tcp = false;  // --transport tcp-loopback: real sockets, small n
  std::vector<sim::Protocol> protocols;  // empty = all (matrix mode)
  std::vector<sim::Fault> faults;        // empty = all (matrix mode)
  std::string json_path;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: scenario_runner [--protocol probft|pbft|hotstuff]\n"
      "                       [--n N] [--f F] [--o O] [--l L]\n"
      "                       [--seeds S1,S2,...] [--deadline-ms MS]\n"
      "                       [--fault happy|silent-leader|silent-f|"
      "equivocate|flood|\n"
      "                                partition|churn|asym-partition|"
      "reorder]\n"
      "                       [--latency synchronous|partial-synchrony|"
      "lossy-duplicating]\n"
      "                       [--matrix] [--protocols P1,P2] "
      "[--faults F1,F2]\n"
      "                       [--jobs N] [--budget-seconds S] "
      "[--json FILE]\n"
      "                       [--transport sim|tcp-loopback]\n"
      "                       [--workload single-shot|smr] "
      "[--smr-commands N]\n"
      "                       [--shards S]\n"
      "\n"
      "--workload smr drives a pipelined SMR fleet through a client\n"
      "workload instead of one single-shot decision; outcomes assert\n"
      "identical logs. SMR supports the crash/churn/partition/reorder\n"
      "faults (simulator transport only).\n"
      "\n"
      "--shards S (with --workload smr) multiplexes S consensus groups\n"
      "per replica behind the placement layer; outcomes assert per-shard\n"
      "log agreement. Adds the shard-silent-leader fault (shard 0's\n"
      "leader goes quiet; sibling shards must keep committing).\n"
      "\n"
      "--transport tcp-loopback runs each scenario over real 127.0.0.1\n"
      "sockets (net::TcpTransport, one thread per replica) instead of the\n"
      "deterministic simulator: crash faults only, small n, wall-clock\n"
      "bounded. Matrix mode skips simulator-only faults there.\n");
}

/// Strict full-string numeric parses: trailing garbage ("16abc") and
/// negative values must fail, not silently run the wrong experiment.
std::uint64_t parse_u64(const std::string& text) {
  // Leading whitespace would let stoull skip to a sign and wrap negatives.
  if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0]))) {
    throw std::invalid_argument(text);
  }
  std::size_t consumed = 0;
  const std::uint64_t value = std::stoull(text, &consumed);
  if (consumed != text.size()) throw std::invalid_argument(text);
  return value;
}

/// The o/l factors must be positive, finite and sane — NaN or a negative
/// factor would silently run a nonsense experiment.
double parse_factor(const std::string& text) {
  std::size_t consumed = 0;
  const double value = std::stod(text, &consumed);
  if (consumed != text.size() || !std::isfinite(value) || value <= 0.0 ||
      value > 100.0) {
    throw std::invalid_argument(text);
  }
  return value;
}

/// Non-negative seconds (fractions allowed); 0 disables the budget.
double parse_seconds(const std::string& text) {
  std::size_t consumed = 0;
  const double value = std::stod(text, &consumed);
  if (consumed != text.size() || !std::isfinite(value) || value < 0.0) {
    throw std::invalid_argument(text);
  }
  return value;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> items;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    items.push_back(csv.substr(pos, comma - pos));  // npos clamps
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return items;
}

std::vector<std::uint64_t> parse_seeds(const std::string& csv) {
  std::vector<std::uint64_t> seeds;
  for (const auto& item : split_csv(csv)) seeds.push_back(parse_u64(item));
  return seeds;
}

bool parse_args(int argc, char** argv, Options& opt);

/// Numeric flag values come from the command line; malformed ones must
/// produce the usage text, not std::terminate.
bool parse(int argc, char** argv, Options& opt) {
  try {
    return parse_args(argc, argv, opt);
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--matrix") {
      opt.matrix = true;
      continue;
    }
    if (i + 1 >= argc) return false;
    const std::string value = argv[++i];
    if (key == "--protocol") {
      if (!sim::protocol_from_string(value, opt.spec.protocol)) return false;
    } else if (key == "--fault" || key == "--scenario") {
      if (!sim::fault_from_string(value, opt.spec.fault)) return false;
    } else if (key == "--protocols") {
      for (const auto& name : split_csv(value)) {
        sim::Protocol protocol{};
        if (!sim::protocol_from_string(name, protocol)) return false;
        opt.protocols.push_back(protocol);
      }
    } else if (key == "--faults") {
      for (const auto& name : split_csv(value)) {
        sim::Fault fault{};
        if (!sim::fault_from_string(name, fault)) return false;
        opt.faults.push_back(fault);
      }
    } else if (key == "--latency") {
      if (value == "synchronous") {
        opt.spec.latency = sim::LatencyModel::kSynchronous;
      } else if (value == "partial-synchrony") {
        opt.spec.latency = sim::LatencyModel::kPartialSynchrony;
      } else if (value == "lossy-duplicating") {
        opt.spec.latency = sim::LatencyModel::kLossyDuplicating;
      } else {
        return false;
      }
    } else if (key == "--n") {
      const std::uint64_t n = parse_u64(value);
      if (n < 1 || n > 1'000'000) return false;
      opt.spec.n = static_cast<std::uint32_t>(n);
    } else if (key == "--f") {
      const std::uint64_t f = parse_u64(value);
      if (f > 1'000'000) return false;
      opt.spec.f = static_cast<std::uint32_t>(f);
    } else if (key == "--o") {
      opt.spec.o = parse_factor(value);
    } else if (key == "--l") {
      opt.spec.l = parse_factor(value);
    } else if (key == "--seed" || key == "--seeds") {
      opt.spec.seeds = parse_seeds(value);
      if (opt.spec.seeds.empty()) return false;
    } else if (key == "--deadline-ms") {
      const std::uint64_t ms = parse_u64(value);
      if (ms > std::numeric_limits<std::uint64_t>::max() / 1000) return false;
      opt.spec.deadline = ms * 1000;
    } else if (key == "--jobs") {
      const std::uint64_t jobs = parse_u64(value);
      if (jobs > 4096) return false;
      opt.sweep.jobs = static_cast<unsigned>(jobs);
    } else if (key == "--budget-seconds") {
      opt.sweep.budget_seconds = parse_seconds(value);
    } else if (key == "--json") {
      if (value.empty()) return false;
      opt.json_path = value;
    } else if (key == "--transport") {
      if (value == "sim") {
        opt.tcp = false;
      } else if (value == "tcp-loopback") {
        opt.tcp = true;
      } else {
        return false;
      }
    } else if (key == "--workload") {
      if (!sim::workload_from_string(value, opt.spec.workload)) return false;
    } else if (key == "--smr-commands") {
      const std::uint64_t commands = parse_u64(value);
      if (commands < 1 || commands > 100'000) return false;
      opt.spec.smr_commands = commands;
    } else if (key == "--shards") {
      const std::uint64_t shards = parse_u64(value);
      if (shards < 1 || shards > shard::kMaxShards) return false;
      opt.spec.shards = static_cast<std::uint32_t>(shards);
    } else {
      return false;
    }
  }
  return true;
}

void print_result(const sim::ScenarioSpec& spec,
                  const sim::ScenarioOutcome& outcome) {
  std::printf(
      "RESULT scenario=%s o=%.2f l=%.2f seed=%llu decided=%zu/%zu "
      "terminated=%d agreement=%d messages=%llu bytes=%llu events=%llu "
      "last_decision_us=%llu max_view=%llu\n",
      sim::scenario_name(spec).c_str(), spec.o, spec.l,
      static_cast<unsigned long long>(outcome.seed), outcome.decided,
      outcome.correct, outcome.terminated ? 1 : 0, outcome.agreement ? 1 : 0,
      static_cast<unsigned long long>(outcome.messages),
      static_cast<unsigned long long>(outcome.bytes),
      static_cast<unsigned long long>(outcome.events),
      static_cast<unsigned long long>(outcome.last_decision_at),
      static_cast<unsigned long long>(outcome.max_view));
}

void print_stats(const sim::SpecStats& stats) {
  std::printf(
      "STATS scenario=%s runs=%zu/%zu terminated=%zu "
      "termination_rate=%.3f agreement_violations=%zu "
      "latency_us_p50=%llu p90=%llu p99=%llu max=%llu events=%llu\n",
      sim::scenario_name(stats.spec).c_str(), stats.runs,
      stats.seeds_scheduled, stats.terminated, stats.termination_rate(),
      stats.agreement_violations,
      static_cast<unsigned long long>(stats.latency_p50),
      static_cast<unsigned long long>(stats.latency_p90),
      static_cast<unsigned long long>(stats.latency_p99),
      static_cast<unsigned long long>(stats.latency_max),
      static_cast<unsigned long long>(stats.events));
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage();
    return 2;
  }

  // --protocols/--faults shape the matrix; accepting them in single-spec
  // mode would silently run a different configuration than requested.
  if (!opt.matrix && (!opt.protocols.empty() || !opt.faults.empty())) {
    std::fprintf(stderr, "--protocols/--faults require --matrix\n");
    usage();
    return 2;
  }
  // The TCP loopback runner realizes single-shot specs only; the SMR
  // client path over real sockets lives in run_tcp_cluster.sh's client
  // mode (probft_node --smr + probft_client).
  if (opt.tcp && opt.spec.workload == sim::Workload::kSmr) {
    std::fprintf(stderr, "--workload smr requires --transport sim\n");
    return 2;
  }
  if (opt.spec.shards > 1 && opt.spec.workload != sim::Workload::kSmr) {
    std::fprintf(stderr, "--shards requires --workload smr\n");
    return 2;
  }

  std::vector<sim::ScenarioSpec> specs;
  if (opt.matrix) {
    const auto& protocols =
        opt.protocols.empty() ? sim::all_protocols() : opt.protocols;
    const auto& faults = opt.faults.empty() ? sim::all_faults() : opt.faults;
    specs = sim::expand_matrix(protocols, faults, opt.spec.seeds, opt.spec);
  } else {
    if (!sim::fault_applicable(opt.spec)) {
      std::fprintf(stderr, "fault %s not applicable to %s (need f >= 1?)\n",
                   sim::to_string(opt.spec.fault),
                   sim::to_string(opt.spec.protocol));
      return 2;
    }
    opt.spec.expect_termination =
        sim::fault_expects_termination(opt.spec.fault);
    specs.push_back(opt.spec);
  }

  if (opt.tcp) {
    // Real sockets: serial execution, one OS thread per replica inside
    // each run. Simulator-only faults cannot be realized here — reject a
    // single-spec request outright, skip them (visibly) in matrix mode.
    if (opt.spec.n > 64) {
      std::fprintf(stderr, "tcp-loopback supports n <= 64\n");
      return 2;
    }
    if (!opt.json_path.empty() || opt.sweep.budget_seconds > 0 ||
        opt.sweep.jobs != 1) {
      std::fprintf(stderr,
                   "--json/--budget-seconds/--jobs are sim-transport only "
                   "(tcp-loopback runs serially, one thread per replica)\n");
      return 2;
    }
    bool safe = true;
    bool live = true;
    std::size_t ran = 0;
    for (const auto& spec : specs) {
      if (!sim::tcp_fault_supported(spec.fault)) {
        if (!opt.matrix) {
          std::fprintf(stderr, "fault %s is simulator-only\n",
                       sim::to_string(spec.fault));
          return 2;
        }
        std::fprintf(stderr, "SKIP %s (simulator-only fault)\n",
                     sim::scenario_name(spec).c_str());
        continue;
      }
      for (const std::uint64_t seed : spec.seeds) {
        const auto outcome = sim::run_scenario_tcp(spec, seed);
        print_result(spec, outcome);
        ++ran;
        safe = safe && outcome.agreement;
        if (spec.expect_termination) live = live && outcome.terminated;
      }
    }
    if (!safe) std::fprintf(stderr, "AGREEMENT VIOLATED\n");
    if (!live) std::fprintf(stderr, "termination expectation missed\n");
    if (ran == 0) {
      std::fprintf(stderr, "no tcp-loopback-capable scenarios selected\n");
      return 2;
    }
    return safe && live ? 0 : 1;
  }

  const sim::SweepReport report = sim::run_sweep(specs, opt.sweep);

  bool safe = true;
  bool live = true;
  for (const auto& stats : report.stats) {
    for (const auto& outcome : stats.outcomes) {
      print_result(stats.spec, outcome);
      safe = safe && outcome.agreement;
      if (stats.spec.expect_termination) {
        live = live && outcome.terminated;
      }
    }
  }
  for (const auto& stats : report.stats) {
    print_stats(stats);
  }
  std::printf(
      "SWEEP jobs=%u budget_seconds=%.3f wall_seconds=%.3f "
      "items=%zu/%zu skipped=%zu\n",
      report.jobs, report.budget_seconds, report.wall_seconds,
      report.items_run, report.items_total, report.items_skipped);

  if (!opt.json_path.empty()) {
    std::ofstream json(opt.json_path);
    if (!json) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
      return 2;
    }
    json << sim::to_json(report);
    std::fprintf(stderr, "wrote %s\n", opt.json_path.c_str());
  }

  if (!safe) std::fprintf(stderr, "AGREEMENT VIOLATED\n");
  if (!live) std::fprintf(stderr, "termination expectation missed\n");
  // A sweep that completed nothing proves nothing — a too-tight budget
  // must not let CI go green with zero coverage.
  if (report.items_total > 0 && report.items_run == 0) {
    std::fprintf(stderr, "no runs completed within the budget\n");
    return 1;
  }
  return safe && live ? 0 : 1;
}
