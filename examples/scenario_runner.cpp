// Scenario runner: a small CLI for exploring ProBFT configurations.
//
//   $ ./examples/scenario_runner --protocol probft --n 64 --f 10
//         --o 1.7 --l 2.0 --seed 3 --scenario silent-leader
//
// Scenarios:
//   happy          all replicas honest (default)
//   silent-leader  the view-1 leader crashes
//   silent-f       f replicas (highest ids) crash
//   equivocate     Fig. 4c optimal-split attack (leader + f-1 colluders)
//   flood          one replica floods forged-sample phase messages
//
// Prints a one-line machine-readable result plus human-readable detail,
// handy for scripting parameter sweeps beyond the bundled benches.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/cluster.hpp"

namespace {

using namespace probft;

struct Options {
  sim::Protocol protocol = sim::Protocol::kProbft;
  std::uint32_t n = 32;
  std::uint32_t f = 0;
  double o = 1.7;
  double l = 2.0;
  std::uint64_t seed = 1;
  std::string scenario = "happy";
  TimePoint deadline = 120'000'000;
};

void usage() {
  std::fprintf(stderr,
               "usage: scenario_runner [--protocol probft|pbft|hotstuff]\n"
               "                       [--n N] [--f F] [--o O] [--l L]\n"
               "                       [--seed S] [--deadline-ms MS]\n"
               "                       [--scenario happy|silent-leader|"
               "silent-f|equivocate|flood]\n");
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; i += 2) {
    if (i + 1 >= argc) return false;
    const std::string key = argv[i];
    const std::string value = argv[i + 1];
    if (key == "--protocol") {
      if (value == "probft") {
        opt.protocol = sim::Protocol::kProbft;
      } else if (value == "pbft") {
        opt.protocol = sim::Protocol::kPbft;
      } else if (value == "hotstuff") {
        opt.protocol = sim::Protocol::kHotStuff;
      } else {
        return false;
      }
    } else if (key == "--n") {
      opt.n = static_cast<std::uint32_t>(std::stoul(value));
    } else if (key == "--f") {
      opt.f = static_cast<std::uint32_t>(std::stoul(value));
    } else if (key == "--o") {
      opt.o = std::stod(value);
    } else if (key == "--l") {
      opt.l = std::stod(value);
    } else if (key == "--seed") {
      opt.seed = std::stoull(value);
    } else if (key == "--deadline-ms") {
      opt.deadline = std::stoull(value) * 1000;
    } else if (key == "--scenario") {
      opt.scenario = value;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage();
    return 2;
  }

  sim::ClusterConfig cfg;
  cfg.protocol = opt.protocol;
  cfg.n = opt.n;
  cfg.f = opt.f;
  cfg.o = opt.o;
  cfg.l = opt.l;
  cfg.seed = opt.seed;
  cfg.behaviors.assign(opt.n, sim::Behavior::kHonest);

  if (opt.scenario == "happy") {
    // nothing to do
  } else if (opt.scenario == "silent-leader") {
    cfg.behaviors[0] = sim::Behavior::kSilent;
  } else if (opt.scenario == "silent-f") {
    for (std::uint32_t i = 0; i < opt.f && i < opt.n; ++i) {
      cfg.behaviors[opt.n - 1 - i] = sim::Behavior::kSilent;
    }
  } else if (opt.scenario == "equivocate") {
    cfg.split = sim::SplitStrategy::kOptimal;
    cfg.behaviors[0] = sim::Behavior::kEquivocateLeader;
    for (std::uint32_t i = 1; i < opt.f && i < opt.n; ++i) {
      cfg.behaviors[i] = sim::Behavior::kColludeFollower;
    }
  } else if (opt.scenario == "flood") {
    cfg.behaviors[opt.n - 1] = sim::Behavior::kFlood;
  } else {
    usage();
    return 2;
  }

  sim::Cluster cluster(cfg);
  cluster.start();
  const bool done = cluster.run_to_completion(opt.deadline);

  const auto& stats = cluster.network().stats();
  TimePoint last_decision = 0;
  View max_view = 0;
  for (const auto& d : cluster.decisions()) {
    last_decision = std::max(last_decision, d.at);
    max_view = std::max(max_view, d.view);
  }

  // Machine-readable summary line.
  std::printf(
      "RESULT scenario=%s protocol=%d n=%u f=%u o=%.2f l=%.2f seed=%llu "
      "decided=%zu/%zu agreement=%d messages=%llu bytes=%llu "
      "last_decision_us=%llu max_view=%llu\n",
      opt.scenario.c_str(), static_cast<int>(opt.protocol), opt.n, opt.f,
      opt.o, opt.l, static_cast<unsigned long long>(opt.seed),
      cluster.correct_decided_count(), cluster.correct_ids().size(),
      cluster.agreement_ok() ? 1 : 0,
      static_cast<unsigned long long>(stats.sends),
      static_cast<unsigned long long>(stats.bytes_sent),
      static_cast<unsigned long long>(last_decision),
      static_cast<unsigned long long>(max_view));

  std::printf("\n%s; %zu/%zu correct replicas decided (max view %llu); "
              "agreement %s\n",
              done ? "completed" : "deadline reached",
              cluster.correct_decided_count(), cluster.correct_ids().size(),
              static_cast<unsigned long long>(max_view),
              cluster.agreement_ok() ? "ok" : "VIOLATED");
  return cluster.agreement_ok() ? 0 : 1;
}
